// Value sets for the communication analysis (§4.2).
//
// A ValueId names an abstract storage location the pipeline may communicate.
// It is a base variable plus a path of steps, where a step is either a field
// name or the reserved element marker "[]" (per-element access into a
// collection). Examples:
//   x                 — {base:"x", steps:{}}
//   zbuf.data         — {base:"zbuf", steps:{"data"}}
//   cubes[].v0        — {base:"cubes", steps:{"[]", "v0"}}
//   scene.tris[].x    — {base:"scene", steps:{"tris", "[]", "x"}}
//
// Gen/Cons/ReqComm are ValueSets: ValueId -> (type, optional section). A
// missing section means "the whole location". Sections apply to the "[]"
// step and carry symbolic bounds (SymPoly), so packet-relative extents like
// [p*sz : p*sz + sz - 1] survive until the cost model binds the runtime
// constants. At most one "[]" step per path is supported; deeper nesting is
// widened conservatively by the analyzer.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ast/type.h"
#include "support/section.h"

namespace cgp {

/// Reserved path step marking per-element access into a collection.
inline constexpr const char* kElemStep = "[]";

struct ValueId {
  std::string base;
  std::vector<std::string> steps;

  bool elementwise() const {
    for (const std::string& s : steps)
      if (s == kElemStep) return true;
    return false;
  }

  /// True when this id is a (non-strict) path prefix of `other`.
  bool is_prefix_of(const ValueId& other) const {
    if (base != other.base) return false;
    if (steps.size() > other.steps.size()) return false;
    for (std::size_t i = 0; i < steps.size(); ++i)
      if (steps[i] != other.steps[i]) return false;
    return true;
  }

  bool operator<(const ValueId& o) const {
    if (base != o.base) return base < o.base;
    return steps < o.steps;
  }
  bool operator==(const ValueId& o) const {
    return base == o.base && steps == o.steps;
  }
  std::string to_string() const;
};

struct ValueEntry {
  TypePtr type;  // type of the accessed leaf
  std::optional<RectSection> section;  // nullopt = whole location

  bool whole() const { return !section.has_value(); }
};

bool operator==(const ValueEntry& a, const ValueEntry& b);

/// Ordered map from ValueId to access description, with the set algebra the
/// one-pass analysis needs.
class ValueSet {
 public:
  using Map = std::map<ValueId, ValueEntry>;

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const Map& items() const { return items_; }
  Map& items_mutable() { return items_; }
  bool contains(const ValueId& id) const { return items_.count(id) > 0; }
  const ValueEntry* find(const ValueId& id) const {
    auto it = items_.find(id);
    return it == items_.end() ? nullptr : &it->second;
  }

  /// May-style insert: widens the recorded section to the hull (or the whole
  /// location when the hull cannot be formed symbolically).
  void add(const ValueId& id, ValueEntry entry);

  /// Must-style removal used for `Cons -= Gen` and `ReqComm -= Gen`: drops
  /// every entry that `gen_id` provably covers. A gen entry covers a
  /// recorded entry when gen's path is a prefix of the entry's path AND
  /// gen's section covers the entry's access (a whole-location def covers
  /// every access under that path).
  void remove_covered(const ValueId& gen_id, const ValueEntry& gen_entry);

  void add_all(const ValueSet& other);
  void remove_covered_all(const ValueSet& gen);

  /// ReqComm(f1) = ReqComm(f2) - Gen(b) + Cons(b)   (§4.2, eqn 1)
  static ValueSet req_comm(const ValueSet& req_comm_next, const ValueSet& gen,
                           const ValueSet& cons);

  /// Removes entries subsumed by a shorter-path entry: when A's path is a
  /// proper prefix of B's and A covers B's access (A is whole, or their
  /// sections match / A's covers B's), B is dropped. Keeps volumes and
  /// packing free of double counting (e.g. `cubes[]` whole elements plus
  /// `cubes[].v0`).
  void normalize();

  bool operator==(const ValueSet& o) const { return items_ == o.items_; }

  std::string to_string() const;

 private:
  Map items_;
};

}  // namespace cgp
