#include "analysis/gencons.h"

#include <algorithm>
#include <cassert>

#include "support/str.h"

namespace cgp {

namespace {

/// Maximum interprocedural analysis depth; beyond it we fall back to the
/// conservative summary (everything reachable consumed, nothing generated).
constexpr std::size_t kMaxCallDepth = 16;

/// Symbols excluded from Cons when they appear in polynomials: internal
/// loop symbols, runtime-bound configuration, and collection-length
/// metadata (carried implicitly with the collection itself).
bool excluded_symbol(const std::string& s) {
  return !s.empty() && (s[0] == '%' || starts_with(s, "runtime_define_") ||
                        starts_with(s, "len("));
}

/// Collects names of variables assigned (or inc/dec'd) anywhere below stmt.
void collect_assigned_names(const Stmt& stmt, std::set<std::string>& out);

void collect_assigned_names_expr(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      if (assign.target->kind == NodeKind::VarRef) {
        out.insert(static_cast<const VarRef&>(*assign.target).name);
      }
      collect_assigned_names_expr(*assign.value, out);
      break;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
          unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec) {
        if (unary.operand->kind == NodeKind::VarRef) {
          out.insert(static_cast<const VarRef&>(*unary.operand).name);
        }
      }
      collect_assigned_names_expr(*unary.operand, out);
      break;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_assigned_names_expr(*binary.lhs, out);
      collect_assigned_names_expr(*binary.rhs, out);
      break;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_assigned_names_expr(*cond.cond, out);
      collect_assigned_names_expr(*cond.then_value, out);
      collect_assigned_names_expr(*cond.else_value, out);
      break;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) collect_assigned_names_expr(*call.base, out);
      for (const ExprPtr& a : call.args) collect_assigned_names_expr(*a, out);
      break;
    }
    case NodeKind::FieldAccess:
      collect_assigned_names_expr(
          *static_cast<const FieldAccess&>(expr).base, out);
      break;
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      collect_assigned_names_expr(*index.base, out);
      for (const ExprPtr& i : index.indices)
        collect_assigned_names_expr(*i, out);
      break;
    }
    default:
      break;
  }
}

void collect_assigned_names(const Stmt& stmt, std::set<std::string>& out) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) collect_assigned_names_expr(*decl.init, out);
      break;
    }
    case NodeKind::ExprStmt:
      collect_assigned_names_expr(*static_cast<const ExprStmt&>(stmt).expr,
                                  out);
      break;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_assigned_names(*s, out);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_assigned_names_expr(*if_stmt.cond, out);
      collect_assigned_names(*if_stmt.then_branch, out);
      if (if_stmt.else_branch) collect_assigned_names(*if_stmt.else_branch, out);
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      collect_assigned_names_expr(*loop.cond, out);
      collect_assigned_names(*loop.body, out);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_assigned_names(*loop.init, out);
      if (loop.cond) collect_assigned_names_expr(*loop.cond, out);
      if (loop.step) collect_assigned_names_expr(*loop.step, out);
      collect_assigned_names(*loop.body, out);
      break;
    }
    case NodeKind::ForeachStmt:
      collect_assigned_names(*static_cast<const ForeachStmt&>(stmt).body, out);
      break;
    case NodeKind::PipelinedLoopStmt:
      collect_assigned_names(
          *static_cast<const PipelinedLoopStmt&>(stmt).body, out);
      break;
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) collect_assigned_names_expr(*ret.value, out);
      break;
    }
    default:
      break;
  }
}

/// p restricted to monomials containing `sym`, with one occurrence of sym
/// factored out; nullopt when sym appears with degree > 1.
std::optional<SymPoly> coefficient_of(const SymPoly& p, const std::string& sym) {
  SymPoly coeff;
  for (const auto& [mono, c] : p.terms()) {
    int count = static_cast<int>(
        std::count(mono.symbols.begin(), mono.symbols.end(), sym));
    if (count == 0) continue;
    if (count > 1) return std::nullopt;
    SymPoly term(c);
    for (const std::string& s : mono.symbols) {
      if (s == sym) continue;
      term *= SymPoly::symbol(s);
    }
    coeff += term;
  }
  return coeff;
}

/// Sign of a polynomial under the domain assumption "all symbols >= 0":
/// +1 nonnegative, -1 nonpositive, 0 unknown/mixed.
int domain_sign(const SymPoly& p) {
  bool any_pos = false;
  bool any_neg = false;
  for (const auto& [mono, c] : p.terms()) {
    (c > 0 ? any_pos : any_neg) = true;
  }
  if (!any_neg) return +1;
  if (!any_pos) return -1;
  return 0;
}

/// Substitutes sym with the extremizing endpoint of [lo, hi]: the minimum of
/// p over sym when want_min, else the maximum. Requires p affine in sym with
/// sign-determinable coefficient; nullopt otherwise.
std::optional<SymPoly> monotone_substitute(const SymPoly& p,
                                           const std::string& sym,
                                           const SymPoly& lo, const SymPoly& hi,
                                           bool want_min) {
  std::optional<SymPoly> coeff = coefficient_of(p, sym);
  if (!coeff) return std::nullopt;
  if (coeff->is_zero()) return p;
  int sign = domain_sign(*coeff);
  if (sign == 0) return std::nullopt;
  bool take_lo = (sign > 0) == want_min;
  return p.substitute(sym, take_lo ? lo : hi);
}

bool section_mentions(const RectSection& section,
                      const std::set<std::string>& symbols) {
  for (const Interval& iv : section.dims()) {
    for (const std::string& s : iv.lo.symbols())
      if (symbols.count(s)) return true;
    for (const std::string& s : iv.hi.symbols())
      if (symbols.count(s)) return true;
  }
  return false;
}

bool section_mentions(const RectSection& section, const std::string& symbol) {
  std::set<std::string> one{symbol};
  return section_mentions(section, one);
}

}  // namespace

std::string GenConsAnalyzer::fresh_name(const std::string& base) const {
  return "%" + base + "#" + std::to_string(fresh_counter_++);
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

SegmentSets GenConsAnalyzer::analyze_segment(
    const std::vector<const Stmt*>& stmts, const ClassInfo* enclosing_class) {
  Context ctx;
  ctx.current_class = enclosing_class;
  ctx.rename_decls = false;
  SegmentSets sets;
  analyze_stmts_reverse(stmts, ctx, sets);
  // Top-level copy-propagated scalars become the segment's scalar_defs,
  // consumed by the ReqComm propagation.
  sets.scalar_defs = ctx.scalar_renames;
  return sets;
}

void substitute_symbol(ValueSet& set, const std::string& symbol,
                       const SymPoly& value) {
  ValueSet out;
  for (const auto& [id, entry] : set.items()) {
    if (!entry.section) {
      out.add(id, entry);
      continue;
    }
    bool touched = false;
    std::vector<Interval> dims;
    for (const Interval& iv : entry.section->dims()) {
      Interval updated = iv;
      for (SymPoly* poly : {&updated.lo, &updated.hi}) {
        for (const std::string& sym : poly->symbols()) {
          if (sym == symbol) {
            *poly = poly->substitute(symbol, value);
            touched = true;
            break;
          }
        }
      }
      dims.push_back(std::move(updated));
    }
    if (touched) {
      out.add(id, ValueEntry{entry.type, RectSection(std::move(dims))});
    } else {
      out.add(id, entry);
    }
  }
  set = std::move(out);
}

// ---------------------------------------------------------------------------
// Statement traversal
// ---------------------------------------------------------------------------

void GenConsAnalyzer::prescan_decls(const std::vector<const Stmt*>& stmts,
                                    Context& ctx) {
  // Names assigned anywhere in this list invalidate copy-propagation of
  // polynomials that mention them.
  std::set<std::string> assigned;
  for (const Stmt* s : stmts) collect_assigned_names(*s, assigned);

  for (const Stmt* s : stmts) {
    if (s->kind != NodeKind::VarDeclStmt) continue;
    const auto& decl = static_cast<const VarDeclStmt&>(*s);
    // Reference-typed locals initialized from a resolvable location become
    // aliases: `Tri t = tris[j]` makes `t.x` mean `tris[j].x`.
    if (decl.declared_type &&
        (decl.declared_type->is_class() || decl.declared_type->is_array()) &&
        decl.init && !assigned.count(decl.name)) {
      LocRef target = resolve_loc(*decl.init, ctx);
      if (target.valid && target.precise) {
        ctx.renames[decl.name] = target;
        ctx.alias_decls.insert(decl.name);
        continue;
      }
    }
    std::string canonical = decl.name;
    if (ctx.rename_decls) {
      canonical = fresh_name(decl.name);
      LocRef renamed;
      renamed.valid = true;
      renamed.id = ValueId{canonical, {}};
      renamed.type = decl.declared_type;
      ctx.renames[decl.name] = renamed;
    }
    ctx.locals.insert(canonical);

    if (!decl.init) continue;
    // Copy-propagate integral decls whose value is an affine function of
    // stable symbols: this is how `int base = p * sz; arr[base + i]`
    // becomes the packet-relative section the paper relies on.
    if (decl.declared_type && decl.declared_type->is_integral() &&
        !assigned.count(decl.name)) {
      std::optional<SymPoly> poly = to_poly(*decl.init, ctx);
      if (poly) {
        bool stable = true;
        for (const std::string& sym : poly->symbols()) {
          if (assigned.count(sym)) {
            stable = false;
            break;
          }
        }
        if (stable) ctx.scalar_renames[decl.name] = *poly;
      }
    }
    if (decl.declared_type && decl.declared_type->is_rectdomain() &&
        decl.declared_type->rank() == 1 && !assigned.count(decl.name)) {
      std::optional<Interval> iv = domain_interval(*decl.init, ctx);
      if (iv) ctx.domain_bindings[decl.name] = RectSection({*iv});
    }
  }
}

void GenConsAnalyzer::analyze_stmts_reverse(
    const std::vector<const Stmt*>& stmts, Context& ctx, SegmentSets& sets) {
  prescan_decls(stmts, ctx);
  for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
    analyze_stmt_reverse(**it, ctx, sets);
  }
}

void GenConsAnalyzer::analyze_stmt_reverse(const Stmt& stmt, Context& ctx,
                                           SegmentSets& sets) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (ctx.alias_decls.count(decl.name)) {
        // Alias binding: the declaration itself neither defines nor
        // consumes data (index expressions are loop-internal).
        break;
      }
      LocRef loc;
      auto renamed = ctx.renames.find(decl.name);
      if (renamed != ctx.renames.end()) {
        loc = renamed->second;
      } else {
        loc.valid = true;
        loc.id = ValueId{decl.name, {}};
        loc.type = decl.declared_type;
        loc.reduction_root = reduction_globals_.count(decl.name) > 0;
      }
      record_def(loc, sets);
      if (decl.init) {
        if (decl.init->kind == NodeKind::NewObject) {
          record_ctor_effects(static_cast<const NewObjectExpr&>(*decl.init),
                              loc, ctx, sets);
        } else if (decl.init->kind == NodeKind::NewArray) {
          record_uses(*static_cast<const NewArrayExpr&>(*decl.init).length,
                      ctx, sets);
        } else {
          record_uses(*decl.init, ctx, sets);
        }
      }
      break;
    }
    case NodeKind::ExprStmt: {
      const Expr& e = *static_cast<const ExprStmt&>(stmt).expr;
      record_uses(e, ctx, sets);
      break;
    }
    case NodeKind::Block: {
      const auto& block = static_cast<const BlockStmt&>(stmt);
      Context child = ctx;
      child.rename_decls = true;
      child.locals.clear();
      std::vector<const Stmt*> inner;
      inner.reserve(block.statements.size());
      for (const StmtPtr& s : block.statements) inner.push_back(s.get());
      SegmentSets sub;
      analyze_stmts_reverse(inner, child, sub);
      strip_locals(sub, child.locals);
      ctx.saw_jump = ctx.saw_jump || child.saw_jump;
      // Unconditional straight-line merge.
      sets.cons.remove_covered_all(sub.gen);
      sets.gen.add_all(sub.gen);
      sets.cons.add_all(sub.cons);
      sets.reductions.insert(sub.reductions.begin(), sub.reductions.end());
      break;
    }
    case NodeKind::IfStmt:
      analyze_conditional(static_cast<const IfStmt&>(stmt), ctx, sets);
      break;
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      analyze_loop(*loop.body, "", std::nullopt, std::nullopt, ctx, sets);
      record_uses(*loop.cond, ctx, sets);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      // Canonical form: for (int i = e0; i < e1; i++) — anything else
      // degrades to while-style (unknown bounds).
      std::string var;
      std::optional<Interval> bounds;
      bool var_is_local = false;
      bool stride_one = false;
      const Expr* init_value = nullptr;
      if (loop.init) {
        if (loop.init->kind == NodeKind::VarDeclStmt) {
          const auto& d = static_cast<const VarDeclStmt&>(*loop.init);
          var = d.name;
          var_is_local = true;
          init_value = d.init.get();
        } else if (loop.init->kind == NodeKind::ExprStmt) {
          const Expr& e = *static_cast<const ExprStmt&>(*loop.init).expr;
          if (e.kind == NodeKind::Assign) {
            const auto& a = static_cast<const AssignExpr&>(e);
            if (a.op == AssignOp::Assign &&
                a.target->kind == NodeKind::VarRef) {
              var = static_cast<const VarRef&>(*a.target).name;
              init_value = a.value.get();
            }
          }
        }
      }
      if (!var.empty() && init_value && loop.cond &&
          loop.cond->kind == NodeKind::Binary) {
        const auto& cond = static_cast<const BinaryExpr&>(*loop.cond);
        bool lt = cond.op == BinaryOp::Lt;
        bool le = cond.op == BinaryOp::Le;
        if ((lt || le) && cond.lhs->kind == NodeKind::VarRef &&
            static_cast<const VarRef&>(*cond.lhs).name == var) {
          std::optional<SymPoly> lo = to_poly(*init_value, ctx);
          std::optional<SymPoly> hi = to_poly(*cond.rhs, ctx);
          if (lo && hi) {
            bounds = Interval{*lo, lt ? (*hi - SymPoly(1)) : *hi};
          }
        }
      }
      if (loop.step) {
        if (loop.step->kind == NodeKind::Unary) {
          const auto& u = static_cast<const UnaryExpr&>(*loop.step);
          stride_one = (u.op == UnaryOp::PreInc || u.op == UnaryOp::PostInc) &&
                       u.operand->kind == NodeKind::VarRef &&
                       static_cast<const VarRef&>(*u.operand).name == var;
        } else if (loop.step->kind == NodeKind::Assign) {
          const auto& a = static_cast<const AssignExpr&>(*loop.step);
          if (a.op == AssignOp::AddAssign &&
              a.target->kind == NodeKind::VarRef &&
              static_cast<const VarRef&>(*a.target).name == var &&
              a.value->kind == NodeKind::IntLit) {
            stride_one = static_cast<const IntLit&>(*a.value).value == 1;
          }
        }
      }
      // The body must not reassign the induction variable.
      std::set<std::string> body_assigned;
      collect_assigned_names(*loop.body, body_assigned);
      bool canonical = !var.empty() && bounds && stride_one &&
                       !body_assigned.count(var);

      Context iter_ctx = ctx;
      if (!canonical) {
        // Unknown bounds / stride: the induction variable still shadows any
        // outer binding, and accesses indexed by it are unstable.
        analyze_loop(*loop.body, var, std::nullopt, std::nullopt, ctx, sets);
      } else {
        analyze_loop(*loop.body, var, bounds, std::nullopt, iter_ctx, sets);
        ctx.saw_jump = ctx.saw_jump || iter_ctx.saw_jump;
      }
      // Loop header effects: bound expressions are consumed; the induction
      // variable, if declared outside, is defined by the loop.
      if (loop.cond) {
        if (canonical) {
          // e1's symbols only; `var` itself is internal.
          const auto& cond = static_cast<const BinaryExpr&>(*loop.cond);
          record_uses(*cond.rhs, ctx, sets);
        } else {
          record_uses(*loop.cond, ctx, sets);
        }
      }
      if (init_value) record_uses(*init_value, ctx, sets);
      if (!var.empty() && !var_is_local) {
        LocRef loc;
        loc.valid = true;
        loc.id = ValueId{var, {}};
        loc.type = Type::primitive(PrimKind::Int);
        record_def(loc, sets);
      }
      break;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      const TypePtr& domain_type = loop.domain->type;
      if (domain_type && domain_type->is_array()) {
        LocRef collection = resolve_loc(*loop.domain, ctx);
        if (collection.valid) {
          analyze_loop(*loop.body, loop.var, std::nullopt, collection, ctx,
                       sets);
          // Iterating a collection consumes its shape.
          LocRef len = collection;
          len.id.steps.push_back("length");
          len.type = Type::primitive(PrimKind::Int);
          len.section.reset();
          record_use_of_loc(len, sets);
        } else {
          // Cannot name the collection: consume the domain expression and
          // analyze the body conservatively (no gen).
          Context child = ctx;
          child.rename_decls = true;
          child.locals.clear();
          SegmentSets sub;
          std::vector<const Stmt*> body{loop.body.get()};
          analyze_stmts_reverse(body, child, sub);
          strip_locals(sub, child.locals);
          for (const auto& [id, entry] : sub.cons.items()) {
            sets.cons.add(id, ValueEntry{entry.type, std::nullopt});
          }
          record_uses(*loop.domain, ctx, sets);
        }
      } else {
        std::optional<Interval> bounds = domain_interval(*loop.domain, ctx);
        analyze_loop(*loop.body, loop.var, bounds, std::nullopt, ctx, sets);
        record_uses(*loop.domain, ctx, sets);
      }
      break;
    }
    case NodeKind::PipelinedLoopStmt:
      diags_.error(stmt.location, "analysis",
                   "nested PipelinedLoop inside a code segment is not "
                   "supported");
      break;
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) record_uses(*ret.value, ctx, sets);
      break;
    }
    case NodeKind::BreakStmt:
    case NodeKind::ContinueStmt:
      ctx.saw_jump = true;
      break;
    default:
      diags_.error(stmt.location, "analysis",
                   "unexpected node in statement position");
  }
}

void GenConsAnalyzer::analyze_conditional(const IfStmt& stmt, Context& ctx,
                                          SegmentSets& sets) {
  // §4.2: "the set Gen(s) cannot be added to the set Gen(b), since the
  // statements in the block s are enclosed in a conditional." Cons(s) joins
  // Cons(b); values both defined and used inside s never surface.
  auto analyze_branch = [&](const Stmt& branch) {
    Context child = ctx;
    child.rename_decls = true;
    child.locals.clear();
    child.saw_jump = false;
    SegmentSets sub;
    std::vector<const Stmt*> stmts{&branch};
    analyze_stmts_reverse(stmts, child, sub);
    strip_locals(sub, child.locals);
    ctx.saw_jump = ctx.saw_jump || child.saw_jump;
    return sub;
  };
  SegmentSets then_sets = analyze_branch(*stmt.then_branch);
  sets.cons.add_all(then_sets.cons);
  sets.reductions.insert(then_sets.reductions.begin(), then_sets.reductions.end());
  if (stmt.else_branch) {
    SegmentSets else_sets = analyze_branch(*stmt.else_branch);
    sets.cons.add_all(else_sets.cons);
    sets.reductions.insert(else_sets.reductions.begin(),
                            else_sets.reductions.end());
  }
  record_uses(*stmt.cond, ctx, sets);
}

void GenConsAnalyzer::analyze_loop(const Stmt& body, const std::string& loop_var,
                                   const std::optional<Interval>& bounds,
                                   const std::optional<LocRef>& collection,
                                   Context& ctx, SegmentSets& sets) {
  Context child = ctx;
  child.rename_decls = true;
  child.locals.clear();
  child.saw_jump = false;
  std::string symbol;
  if (!loop_var.empty()) {
    IterBinding binding;
    if (collection) {
      binding.element_of = true;
      binding.collection = *collection;
    } else {
      symbol = fresh_name(loop_var);
      binding.symbol = symbol;
    }
    child.iters[loop_var] = binding;
  }

  SegmentSets sub;
  std::vector<const Stmt*> stmts;
  if (body.kind == NodeKind::Block) {
    for (const StmtPtr& s : static_cast<const BlockStmt&>(body).statements)
      stmts.push_back(s.get());
  } else {
    stmts.push_back(&body);
  }
  analyze_stmts_reverse(stmts, child, sub);
  strip_locals(sub, child.locals);
  ctx.saw_jump = ctx.saw_jump || false;  // loop contains its own jumps

  // Scalars mutated inside the loop have iteration-dependent values; any
  // section mentioning them is unstable.
  std::set<std::string> unstable;
  for (const auto& [id, entry] : sub.gen.items()) {
    if (id.steps.empty() && entry.type && entry.type->is_integral()) {
      unstable.insert(id.base);
    }
  }
  widen_unstable(sub, unstable);

  if (!symbol.empty()) {
    if (bounds) {
      substitute_loop_var(sub, symbol, bounds->lo, bounds->hi);
    } else {
      widen_unstable(sub, {symbol});
    }
  }

  // §4.2 assumes loops run at least one iteration, so Gen(s) is a must-set;
  // a break/continue in the body makes coverage partial, so only Cons
  // survives in that case.
  bool must = !child.saw_jump;
  if (must) {
    sets.cons.remove_covered_all(sub.gen);
    sets.gen.add_all(sub.gen);
  }
  sets.cons.add_all(sub.cons);
  sets.reductions.insert(sub.reductions.begin(), sub.reductions.end());
}

// ---------------------------------------------------------------------------
// Expression effects
// ---------------------------------------------------------------------------

void GenConsAnalyzer::record_def(const LocRef& loc, SegmentSets& sets) {
  if (!loc.valid) return;
  if (loc.reduction_root) {
    sets.reductions.insert(loc.id.base);
    return;
  }
  if (!loc.precise) return;
  ValueEntry entry{loc.type, loc.section};
  sets.cons.remove_covered(loc.id, entry);
  sets.gen.add(loc.id, entry);
}

void GenConsAnalyzer::record_use_of_loc(const LocRef& loc, SegmentSets& sets) {
  if (!loc.valid) return;
  if (loc.reduction_root) {
    sets.reductions.insert(loc.id.base);
    return;
  }
  ValueEntry entry{loc.type, loc.precise ? loc.section : std::nullopt};
  sets.cons.add(loc.id, entry);
}

void GenConsAnalyzer::record_assign(const AssignExpr& assign, Context& ctx,
                                    SegmentSets& sets) {
  LocRef loc = resolve_loc(*assign.target, ctx);
  record_def(loc, sets);
  if (assign.op != AssignOp::Assign) {
    // Compound assignment also reads the previous value.
    record_use_of_loc(loc, sets);
  }
  if (!loc.valid) {
    // Untracked target: the write is dropped from Gen (sound — more data is
    // communicated), but whatever the target expression evaluates is used.
    if (assign.target->kind == NodeKind::FieldAccess) {
      record_uses(*static_cast<const FieldAccess&>(*assign.target).base, ctx,
                  sets);
    } else if (assign.target->kind == NodeKind::Index) {
      const auto& index = static_cast<const IndexExpr&>(*assign.target);
      record_uses(*index.base, ctx, sets);
      for (const ExprPtr& i : index.indices) record_uses(*i, ctx, sets);
    }
  } else if (assign.target->kind == NodeKind::Index) {
    // Index expressions are evaluated even when the write is tracked.
    const auto& index = static_cast<const IndexExpr&>(*assign.target);
    for (const ExprPtr& i : index.indices) record_uses(*i, ctx, sets);
  }
  if (assign.value->kind == NodeKind::NewObject) {
    record_ctor_effects(static_cast<const NewObjectExpr&>(*assign.value),
                        loc.valid ? std::optional<LocRef>(loc) : std::nullopt,
                        ctx, sets);
  } else if (assign.value->kind == NodeKind::NewArray) {
    record_uses(*static_cast<const NewArrayExpr&>(*assign.value).length, ctx,
                sets);
  } else {
    record_uses(*assign.value, ctx, sets);
  }
}

void GenConsAnalyzer::record_uses(const Expr& expr, Context& ctx,
                                  SegmentSets& sets) {
  switch (expr.kind) {
    case NodeKind::IntLit:
    case NodeKind::FloatLit:
    case NodeKind::BoolLit:
    case NodeKind::StringLit:
    case NodeKind::NullLit:
      return;
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      if (ref.is_runtime_define) return;  // configuration, not data
      auto iter = ctx.iters.find(ref.name);
      if (iter != ctx.iters.end()) {
        if (iter->second.element_of) {
          // The whole element is consumed (e.g. stored or passed around).
          LocRef loc = iter->second.collection;
          loc.id.steps.push_back(kElemStep);
          loc.type = loc.type && loc.type->is_array() ? loc.type->element()
                                                      : ref.type;
          record_use_of_loc(loc, sets);
        }
        return;  // index variables are internal
      }
      auto scalar = ctx.scalar_renames.find(ref.name);
      if (scalar != ctx.scalar_renames.end()) {
        for (const std::string& sym : scalar->second.symbols()) {
          if (excluded_symbol(sym)) continue;
          // Dotted symbols are field paths; the root object's own access
          // records cover them.
          if (sym.find('.') != std::string::npos) continue;
          LocRef loc;
          loc.valid = true;
          loc.id = ValueId{sym, {}};
          loc.type = Type::primitive(PrimKind::Int);
          record_use_of_loc(loc, sets);
        }
        return;
      }
      LocRef loc = resolve_loc(expr, ctx);
      record_use_of_loc(loc, sets);
      return;
    }
    case NodeKind::FieldAccess: {
      LocRef loc = resolve_loc(expr, ctx);
      if (loc.valid) {
        record_use_of_loc(loc, sets);
      } else {
        record_uses(*static_cast<const FieldAccess&>(expr).base, ctx, sets);
      }
      return;
    }
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      LocRef loc = resolve_loc(expr, ctx);
      if (loc.valid) {
        record_use_of_loc(loc, sets);
      } else {
        record_uses(*index.base, ctx, sets);
      }
      for (const ExprPtr& i : index.indices) record_uses(*i, ctx, sets);
      return;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
          unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec) {
        LocRef loc = resolve_loc(*unary.operand, ctx);
        record_def(loc, sets);
        record_use_of_loc(loc, sets);
        return;
      }
      record_uses(*unary.operand, ctx, sets);
      return;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      record_uses(*binary.lhs, ctx, sets);
      record_uses(*binary.rhs, ctx, sets);
      return;
    }
    case NodeKind::Assign:
      record_assign(static_cast<const AssignExpr&>(expr), ctx, sets);
      return;
    case NodeKind::Call:
      record_call_effects(static_cast<const CallExpr&>(expr), ctx, sets);
      return;
    case NodeKind::NewObject:
      record_ctor_effects(static_cast<const NewObjectExpr&>(expr),
                          std::nullopt, ctx, sets);
      return;
    case NodeKind::NewArray:
      record_uses(*static_cast<const NewArrayExpr&>(expr).length, ctx, sets);
      return;
    case NodeKind::RectdomainLit: {
      const auto& lit = static_cast<const RectdomainLit&>(expr);
      for (const auto& dim : lit.dims) {
        record_uses(*dim.lo, ctx, sets);
        record_uses(*dim.hi, ctx, sets);
      }
      return;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      record_uses(*cond.cond, ctx, sets);
      record_uses(*cond.then_value, ctx, sets);
      record_uses(*cond.else_value, ctx, sets);
      return;
    }
    default:
      return;
  }
}

void GenConsAnalyzer::record_call_effects(const CallExpr& call, Context& ctx,
                                          SegmentSets& sets) {
  if (call.is_intrinsic) {
    if (call.base) record_uses(*call.base, ctx, sets);
    for (const ExprPtr& arg : call.args) record_uses(*arg, ctx, sets);
    return;
  }

  std::optional<LocRef> receiver;
  if (call.base) {
    LocRef loc = resolve_loc(*call.base, ctx);
    if (loc.valid) {
      receiver = loc;
    } else {
      record_uses(*call.base, ctx, sets);
    }
  } else if (ctx.renames.count("this")) {
    receiver = ctx.renames.at("this");
  }

  std::vector<LocRef> actual_locs;
  std::vector<std::optional<SymPoly>> actual_polys;
  for (const ExprPtr& arg : call.args) {
    actual_locs.push_back(resolve_loc(*arg, ctx));
    actual_polys.push_back(to_poly(*arg, ctx));
  }

  const ClassInfo* cls = registry_.find(call.resolved_class);
  const MethodDecl* method = cls ? cls->find_method(call.callee) : nullptr;

  auto conservative = [&]() {
    if (receiver) {
      LocRef whole = *receiver;
      whole.precise = true;
      record_use_of_loc(whole, sets);
    }
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      if (actual_locs[i].valid) {
        record_use_of_loc(actual_locs[i], sets);
      } else {
        record_uses(*call.args[i], ctx, sets);
      }
    }
  };

  if (!method || !method->body) {
    conservative();
    return;
  }

  // Primitive-typed arguments are consumed at the call site by value:
  // their expressions evaluate here whether or not the callee reads them.
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    const TypePtr& pt = method->params.size() > i
                            ? method->params[i]->type
                            : nullptr;
    if (pt && pt->is_primitive()) record_uses(*call.args[i], ctx, sets);
  }

  SegmentSets callee =
      analyze_callee(*cls, *method, receiver, actual_locs, actual_polys, ctx);
  sets.cons.remove_covered_all(callee.gen);
  sets.gen.add_all(callee.gen);
  sets.cons.add_all(callee.cons);
  sets.reductions.insert(callee.reductions.begin(), callee.reductions.end());
}

void GenConsAnalyzer::record_ctor_effects(const NewObjectExpr& alloc,
                                          const std::optional<LocRef>& target,
                                          Context& ctx, SegmentSets& sets) {
  if (target) record_def(*target, sets);
  const ClassInfo* cls = registry_.find(alloc.class_name);
  const MethodDecl* ctor = cls ? cls->constructor() : nullptr;
  std::vector<LocRef> actual_locs;
  std::vector<std::optional<SymPoly>> actual_polys;
  for (const ExprPtr& arg : alloc.args) {
    actual_locs.push_back(resolve_loc(*arg, ctx));
    actual_polys.push_back(to_poly(*arg, ctx));
  }
  if (!cls || !ctor || !ctor->body) {
    for (const ExprPtr& arg : alloc.args) record_uses(*arg, ctx, sets);
    return;
  }
  for (std::size_t i = 0; i < alloc.args.size(); ++i) {
    const TypePtr& pt =
        ctor->params.size() > i ? ctor->params[i]->type : nullptr;
    if (pt && pt->is_primitive()) record_uses(*alloc.args[i], ctx, sets);
  }
  // Analyze the constructor with `this` bound to the target (or to a fresh
  // unobservable object when the allocation is anonymous).
  std::optional<LocRef> this_loc = target;
  std::string anon_name;
  if (!this_loc) {
    anon_name = fresh_name("this");
    LocRef fresh;
    fresh.valid = true;
    fresh.id = ValueId{anon_name, {}};
    fresh.type = Type::class_type(alloc.class_name);
    this_loc = fresh;
  }
  SegmentSets callee =
      analyze_callee(*cls, *ctor, this_loc, actual_locs, actual_polys, ctx);
  if (!anon_name.empty()) {
    std::set<std::string> anon{anon_name};
    strip_locals(callee, anon);
  }
  sets.cons.remove_covered_all(callee.gen);
  sets.gen.add_all(callee.gen);
  sets.cons.add_all(callee.cons);
  sets.reductions.insert(callee.reductions.begin(), callee.reductions.end());
}

SegmentSets GenConsAnalyzer::analyze_callee(
    const ClassInfo& cls, const MethodDecl& method,
    const std::optional<LocRef>& receiver,
    const std::vector<LocRef>& actual_locs,
    const std::vector<std::optional<SymPoly>>& actual_polys,
    Context& caller_ctx) {
  (void)caller_ctx;  // reserved for alias context refinement
  const std::string key = cls.name + "::" + method.name;
  SegmentSets result;
  bool recursive =
      std::find(call_stack_.begin(), call_stack_.end(), key) !=
      call_stack_.end();
  if (recursive || call_stack_.size() >= kMaxCallDepth) {
    // Conservative summary: everything reachable is consumed, nothing
    // provably generated.
    if (receiver && receiver->valid) {
      if (receiver->reduction_root) {
        result.reductions.insert(receiver->id.base);
      } else {
        ValueEntry entry{receiver->type, std::nullopt};
        result.cons.add(receiver->id, entry);
      }
    }
    for (const LocRef& loc : actual_locs) {
      if (!loc.valid) continue;
      if (loc.reduction_root) {
        result.reductions.insert(loc.id.base);
      } else {
        result.cons.add(loc.id, ValueEntry{loc.type, std::nullopt});
      }
    }
    return result;
  }

  call_stack_.push_back(key);
  ++contexts_analyzed_;

  Context ctx;
  ctx.current_class = &cls;
  ctx.rename_decls = true;
  if (receiver && receiver->valid) {
    ctx.renames["this"] = *receiver;
  } else {
    std::string anon = fresh_name("this");
    LocRef fresh;
    fresh.valid = true;
    fresh.id = ValueId{anon, {}};
    fresh.type = Type::class_type(cls.name);
    ctx.renames["this"] = fresh;
    ctx.locals.insert(anon);
  }
  for (std::size_t i = 0; i < method.params.size(); ++i) {
    const Param& param = *method.params[i];
    const bool have_loc = i < actual_locs.size() && actual_locs[i].valid;
    const bool have_poly = i < actual_polys.size() &&
                           actual_polys[i].has_value();
    if (param.type && param.type->is_integral() && have_poly) {
      ctx.scalar_renames[param.name] = *actual_polys[i];
    } else if (have_loc) {
      ctx.renames[param.name] = actual_locs[i];
    } else {
      std::string anon = fresh_name(param.name);
      LocRef fresh;
      fresh.valid = true;
      fresh.id = ValueId{anon, {}};
      fresh.type = param.type;
      ctx.renames[param.name] = fresh;
      ctx.locals.insert(anon);
    }
  }

  std::vector<const Stmt*> stmts;
  for (const StmtPtr& s : method.body->statements) stmts.push_back(s.get());
  analyze_stmts_reverse(stmts, ctx, result);
  strip_locals(result, ctx.locals);

  call_stack_.pop_back();
  return result;
}

// ---------------------------------------------------------------------------
// Location / polynomial resolution
// ---------------------------------------------------------------------------

LocRef GenConsAnalyzer::resolve_loc(const Expr& expr, Context& ctx) const {
  LocRef invalid;
  switch (expr.kind) {
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      if (ref.is_runtime_define) return invalid;
      auto iter = ctx.iters.find(ref.name);
      if (iter != ctx.iters.end()) {
        if (!iter->second.element_of) return invalid;  // index value
        LocRef loc = iter->second.collection;
        loc.id.steps.push_back(kElemStep);
        loc.type = loc.type && loc.type->is_array() ? loc.type->element()
                                                    : ref.type;
        return loc;
      }
      auto renamed = ctx.renames.find(ref.name);
      if (renamed != ctx.renames.end()) return renamed->second;
      if (ctx.scalar_renames.count(ref.name)) return invalid;  // value only
      if (ref.name != "this" && ctx.current_class) {
        if (const FieldInfo* field = ctx.current_class->find_field(ref.name)) {
          auto this_it = ctx.renames.find("this");
          if (this_it != ctx.renames.end()) {
            LocRef loc = this_it->second;
            loc.id.steps.push_back(field->name);
            loc.type = field->type;
            return loc;
          }
          return invalid;
        }
      }
      LocRef loc;
      loc.valid = true;
      loc.id = ValueId{ref.name, {}};
      loc.type = ref.type;
      loc.reduction_root = reduction_globals_.count(ref.name) > 0;
      return loc;
    }
    case NodeKind::FieldAccess: {
      const auto& access = static_cast<const FieldAccess&>(expr);
      LocRef base = resolve_loc(*access.base, ctx);
      if (!base.valid) return invalid;
      base.id.steps.push_back(access.field);
      base.type = access.type;
      return base;
    }
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      if (index.indices.size() != 1) return invalid;
      LocRef base = resolve_loc(*index.base, ctx);
      if (!base.valid) return invalid;
      if (base.id.elementwise()) return invalid;  // one "[]" level supported
      base.id.steps.push_back(kElemStep);
      base.type = index.type;
      // Mutable lookup is fine: to_poly only reads the context.
      std::optional<SymPoly> poly = to_poly(*index.indices[0], ctx);
      if (poly) {
        base.section = RectSection::dim1(*poly, *poly);
      } else {
        base.section.reset();
        base.precise = false;
      }
      return base;
    }
    default:
      return invalid;
  }
}

std::optional<SymPoly> GenConsAnalyzer::to_poly(const Expr& expr,
                                                Context& ctx) const {
  switch (expr.kind) {
    case NodeKind::IntLit:
      return SymPoly(static_cast<const IntLit&>(expr).value);
    case NodeKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      auto iter = ctx.iters.find(ref.name);
      if (iter != ctx.iters.end()) {
        if (iter->second.element_of) return std::nullopt;
        return SymPoly::symbol(iter->second.symbol);
      }
      auto scalar = ctx.scalar_renames.find(ref.name);
      if (scalar != ctx.scalar_renames.end()) return scalar->second;
      auto renamed = ctx.renames.find(ref.name);
      if (renamed != ctx.renames.end()) {
        const LocRef& loc = renamed->second;
        if (loc.valid && loc.id.steps.empty() && loc.type &&
            loc.type->is_integral()) {
          return SymPoly::symbol(loc.id.base);
        }
        return std::nullopt;
      }
      if (!ref.type || !ref.type->is_integral()) return std::nullopt;
      // Unqualified fields of the enclosing class resolve through `this`,
      // yielding a dotted symbol (e.g. "zbuf.w").
      if (ctx.current_class && ctx.current_class->find_field(ref.name) &&
          ctx.renames.count("this")) {
        LocRef loc = resolve_loc(ref, ctx);
        if (loc.valid && loc.precise && !loc.id.elementwise()) {
          return SymPoly::symbol(loc.id.to_string());
        }
        return std::nullopt;
      }
      return SymPoly::symbol(ref.name);
    }
    case NodeKind::FieldAccess: {
      const auto& access = static_cast<const FieldAccess&>(expr);
      LocRef loc = resolve_loc(expr, ctx);
      if (loc.valid && access.field == "length") {
        return SymPoly::symbol("len(" + loc.id.to_string() + ")");
      }
      if (loc.valid && loc.precise && loc.type && loc.type->is_integral() &&
          !loc.id.elementwise()) {
        return SymPoly::symbol(loc.id.to_string());
      }
      return std::nullopt;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op != UnaryOp::Neg) return std::nullopt;
      std::optional<SymPoly> inner = to_poly(*unary.operand, ctx);
      if (!inner) return std::nullopt;
      return -*inner;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      std::optional<SymPoly> lhs = to_poly(*binary.lhs, ctx);
      std::optional<SymPoly> rhs = to_poly(*binary.rhs, ctx);
      if (!lhs || !rhs) return std::nullopt;
      switch (binary.op) {
        case BinaryOp::Add: return *lhs + *rhs;
        case BinaryOp::Sub: return *lhs - *rhs;
        case BinaryOp::Mul: return *lhs * *rhs;
        case BinaryOp::Div: {
          std::optional<std::int64_t> a = lhs->constant_value();
          std::optional<std::int64_t> b = rhs->constant_value();
          if (a && b && *b != 0 && *a % *b == 0) return SymPoly(*a / *b);
          return std::nullopt;
        }
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<Interval> GenConsAnalyzer::domain_interval(const Expr& domain,
                                                         Context& ctx) const {
  if (domain.kind == NodeKind::RectdomainLit) {
    const auto& lit = static_cast<const RectdomainLit&>(domain);
    if (lit.dims.size() != 1) return std::nullopt;
    std::optional<SymPoly> lo = to_poly(*lit.dims[0].lo, ctx);
    std::optional<SymPoly> hi = to_poly(*lit.dims[0].hi, ctx);
    if (!lo || !hi) return std::nullopt;
    return Interval{*lo, *hi};
  }
  if (domain.kind == NodeKind::VarRef) {
    const auto& ref = static_cast<const VarRef&>(domain);
    auto it = ctx.domain_bindings.find(ref.name);
    if (it != ctx.domain_bindings.end() && it->second.rank() == 1) {
      return it->second.dims()[0];
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Set surgery
// ---------------------------------------------------------------------------

void GenConsAnalyzer::substitute_loop_var(SegmentSets& sets,
                                          const std::string& symbol,
                                          const SymPoly& lo,
                                          const SymPoly& hi) {
  auto substitute_in = [&](ValueSet& set, bool is_gen) {
    ValueSet::Map rebuilt;
    for (auto& [id, entry] : set.items_mutable()) {
      if (!entry.section || !section_mentions(*entry.section, symbol)) {
        rebuilt.emplace(id, entry);
        continue;
      }
      std::vector<Interval> dims;
      bool ok = true;
      for (const Interval& iv : entry.section->dims()) {
        std::optional<SymPoly> new_lo =
            monotone_substitute(iv.lo, symbol, lo, hi, /*want_min=*/true);
        std::optional<SymPoly> new_hi =
            monotone_substitute(iv.hi, symbol, lo, hi, /*want_min=*/false);
        if (!new_lo || !new_hi) {
          ok = false;
          break;
        }
        dims.push_back(Interval{std::move(*new_lo), std::move(*new_hi)});
      }
      if (ok) {
        rebuilt.emplace(id, ValueEntry{entry.type, RectSection(dims)});
      } else if (!is_gen) {
        rebuilt.emplace(id, ValueEntry{entry.type, std::nullopt});
      }
      // Gen entries that cannot be widened precisely are dropped (sound:
      // under-approximating Gen only increases communication).
    }
    ValueSet out;
    for (auto& [id, entry] : rebuilt) out.add(id, entry);
    set = std::move(out);
  };
  substitute_in(sets.gen, /*is_gen=*/true);
  substitute_in(sets.cons, /*is_gen=*/false);
}

void GenConsAnalyzer::widen_unstable(SegmentSets& sets,
                                     const std::set<std::string>& bad_symbols) {
  if (bad_symbols.empty()) return;
  ValueSet new_gen;
  for (const auto& [id, entry] : sets.gen.items()) {
    if (entry.section && section_mentions(*entry.section, bad_symbols)) {
      continue;  // dropped from the must-set
    }
    new_gen.add(id, entry);
  }
  sets.gen = std::move(new_gen);
  for (auto& [id, entry] : sets.cons.items_mutable()) {
    if (entry.section && section_mentions(*entry.section, bad_symbols)) {
      entry.section.reset();  // widened to the whole location
    }
  }
}

void GenConsAnalyzer::strip_locals(SegmentSets& sets,
                                   const std::set<std::string>& locals) {
  if (locals.empty()) return;
  auto strip = [&](ValueSet& set) {
    ValueSet out;
    for (const auto& [id, entry] : set.items()) {
      if (locals.count(id.base)) continue;
      out.add(id, entry);
    }
    set = std::move(out);
  };
  strip(sets.gen);
  strip(sets.cons);
  // Sections mentioning stripped names are also unstable outside the scope.
  widen_unstable(sets, locals);
}

}  // namespace cgp
