// Loop fission for candidate-boundary exposure (§4.1).
//
// "If there are candidate filter boundaries within a foreach loop, we
// perform loop fission and create separate foreach loops. This ensures
// that there are no candidate boundaries inside a foreach loop."
//
// Candidate boundaries inside a foreach body are conditional statements and
// statements containing (non-intrinsic) calls. Fission partitions the body
// into pieces at those statements and emits one foreach per piece over the
// same domain. Values flowing between pieces are handled two ways:
//   * rematerialization — a local whose initializer is pure and cheap is
//     re-declared in every piece that needs it;
//   * scalar expansion — any other local becomes an array indexed by the
//     loop variable, allocated before the first piece.
// Element iteration (`foreach (t in coll)`) is first normalized to index
// iteration so the pieces share an index.
//
// The pass is semantics-preserving because foreach iterations are
// order-independent by construction (§3).
#pragma once

#include "ast/ast.h"
#include "support/diagnostics.h"

namespace cgp {

struct FissionStats {
  int loops_examined = 0;
  int loops_fissioned = 0;
  int pieces_created = 0;
  int locals_expanded = 0;
  int locals_rematerialized = 0;
};

/// Applies fission to every top-level foreach in the PipelinedLoop body.
/// Mutates the loop in place. Returns statistics for tests/reporting.
/// The caller must re-run Sema afterwards (new nodes lack types).
FissionStats fission_pipelined_body(PipelinedLoopStmt& loop,
                                    DiagnosticEngine& diags);

/// True when `stmt` would be split out as its own piece: it is a
/// conditional, or contains a non-intrinsic call anywhere below it.
bool is_piece_splitter(const Stmt& stmt);

/// True when `expr` is pure (no calls, allocations, or writes) — eligible
/// for rematerialization.
bool is_pure_expr(const Expr& expr);

}  // namespace cgp
