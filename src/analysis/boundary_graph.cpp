#include "analysis/boundary_graph.h"

#include <functional>

namespace cgp {

CandidateBoundaryGraph::CandidateBoundaryGraph() {
  labels_.push_back("start");
  edges_.emplace_back();
}

int CandidateBoundaryGraph::add_boundary(std::string label) {
  labels_.push_back(std::move(label));
  edges_.emplace_back();
  return node_count() - 1;
}

void CandidateBoundaryGraph::set_end() {
  labels_.push_back("end");
  edges_.emplace_back();
  end_ = node_count() - 1;
}

void CandidateBoundaryGraph::add_edge(int from, int to) {
  edges_[static_cast<std::size_t>(from)].push_back(to);
}

bool CandidateBoundaryGraph::is_acyclic() const {
  enum class Mark { White, Grey, Black };
  std::vector<Mark> marks(static_cast<std::size_t>(node_count()), Mark::White);
  bool cycle = false;
  std::function<void(int)> visit = [&](int node) {
    auto& mark = marks[static_cast<std::size_t>(node)];
    if (mark == Mark::Grey) {
      cycle = true;
      return;
    }
    if (mark == Mark::Black) return;
    mark = Mark::Grey;
    for (int next : successors(node)) visit(next);
    marks[static_cast<std::size_t>(node)] = Mark::Black;
  };
  for (int n = 0; n < node_count() && !cycle; ++n) visit(n);
  return !cycle;
}

std::vector<std::vector<int>> CandidateBoundaryGraph::flow_paths() const {
  std::vector<std::vector<int>> paths;
  if (end_ < 0) return paths;
  std::vector<int> current{kStart};
  std::function<void(int)> walk = [&](int node) {
    if (node == end_) {
      paths.push_back(current);
      return;
    }
    for (int next : successors(node)) {
      current.push_back(next);
      walk(next);
      current.pop_back();
    }
  };
  walk(kStart);
  return paths;
}

bool CandidateBoundaryGraph::is_chain() const {
  if (end_ < 0) return false;
  int node = kStart;
  std::size_t visited = 1;
  while (node != end_) {
    const std::vector<int>& next = successors(node);
    if (next.size() != 1) return false;
    node = next[0];
    ++visited;
  }
  return visited == static_cast<std::size_t>(node_count());
}

CandidateBoundaryGraph CandidateBoundaryGraph::chain(
    const std::vector<std::string>& labels) {
  CandidateBoundaryGraph graph;
  int prev = kStart;
  for (const std::string& label : labels) {
    int node = graph.add_boundary(label);
    graph.add_edge(prev, node);
    prev = node;
  }
  graph.set_end();
  graph.add_edge(prev, graph.end_node());
  return graph;
}

}  // namespace cgp
