// PS-DSWP-style stage classification (ROADMAP item 1).
//
// A filter is *parallel* when every location it mutates is either
//   (a) per-packet data — declared inside the PipelinedLoop body, so each
//       packet carries its own instance and transparent copies of the
//       filter touch disjoint state, or
//   (b) a loop-global reduction variable (a Reducinterface object declared
//       before the loop): the runtime replicates it per copy and merges
//       replicas at end of stream, so concurrent updates commute (§3).
// Everything else — a scalar or object declared before the loop and
// mutated per packet, a call whose effects the classifier cannot bound —
// is loop-carried state, and the filter is *sequential*: giving its stage
// more than one transparent copy would race packets through shared state.
//
// The classification is deliberately syntactic and conservative. Gen/Cons
// cannot be reused here: imprecise writes never enter Gen (they would
// under-approximate the mutation set), while this analysis must
// over-approximate it. Call receivers and reference-typed call arguments
// are therefore assumed mutated, and an unqualified non-intrinsic call
// forces the filter sequential.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/pipeline_model.h"

namespace cgp {

enum class StageClass : std::uint8_t {
  kSequential,  // carries state between packets outside a Reduce interface
  kParallel,    // stateless, or state expressible as reduction replicas
};

const char* stage_class_name(StageClass cls);

/// Verdict for one atomic filter.
struct FilterClassification {
  StageClass cls = StageClass::kSequential;
  /// Base names of loop-carried locations the filter mutates (empty for
  /// parallel filters).
  std::set<std::string> carried_writes;
  /// Reduction variables the filter updates (informational; these do NOT
  /// make it sequential).
  std::set<std::string> reduction_writes;
  /// Human-readable explanation for the decomposition report.
  std::string reason;

  bool parallel() const { return cls == StageClass::kParallel; }
};

struct PipelineClassification {
  std::vector<FilterClassification> filters;

  /// Per-filter parallel flags in DecompositionInput layout (1 = the
  /// filter tolerates transparent replication).
  std::vector<char> parallel_flags() const;
  /// One line per filter, e.g. "f2: parallel (reductions: acc)".
  std::string to_string() const;
};

/// Classifies every atomic filter of the model. Requires the model's
/// statements to be type-checked (expression types drive the
/// reference-argument conservatism).
PipelineClassification classify_filters(const PipelineModel& model);

}  // namespace cgp
