// Pipeline model: the compiler's view of one PipelinedLoop after boundary
// identification, fission, segmentation, Gen/Cons analysis and ReqComm
// propagation (§4.1–4.2). This is the input to the cost model (§4.3) and
// the filter decomposition (§4.4), and to code generation (§5).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/boundary_graph.h"
#include "analysis/gencons.h"
#include "ast/ast.h"
#include "sema/registry.h"
#include "support/diagnostics.h"

namespace cgp {

/// One atomic filter: a maximal run of PipelinedLoop-body statements with
/// no candidate boundary inside.
struct AtomicFilter {
  std::vector<const Stmt*> stmts;
  std::string label;
};

struct PipelineModel {
  const ClassDecl* owner_class = nullptr;
  const MethodDecl* method = nullptr;
  const PipelinedLoopStmt* loop = nullptr;
  std::string loop_var;

  /// Statements of the enclosing method before/after the PipelinedLoop.
  /// `before` runs once on the data stage (input setup); `after` runs once
  /// on the view stage (result consumption).
  std::vector<const Stmt*> before;
  std::vector<const Stmt*> after;

  /// Loop-global reduction variables: name -> declaring statement. These
  /// are replicated per filter copy and merged at end of stream (§3).
  std::map<std::string, const VarDeclStmt*> reduction_decls;
  /// Reduction variables consumed by the post-loop code.
  std::set<std::string> after_reductions;

  /// n+1 atomic filters f_1..f_{n+1} separated by n candidate boundaries.
  std::vector<AtomicFilter> filters;
  /// Gen/Cons per atomic filter (same indexing as `filters`).
  std::vector<SegmentSets> sets;
  /// req_comm[i] = values that must cross a boundary placed right AFTER
  /// filter i. req_comm.back() is the final-result set (Cons of the code
  /// following the PipelinedLoop — a generalization of the paper's
  /// "initialized to the null set" covering the result handoff to C_m).
  std::vector<ValueSet> req_comm;
  /// Values that must be available BEFORE the first filter (the input data).
  ValueSet input_req;

  CandidateBoundaryGraph graph;
  std::size_t analysis_contexts = 0;

  /// Class registry from the final Sema run (types, field layouts).
  ClassRegistry registry;

  int boundary_count() const { return static_cast<int>(filters.size()) - 1; }
};

struct PipelineBuildOptions {
  bool apply_fission = true;
};

/// Locates the first PipelinedLoop in the program, applies loop fission,
/// segments the body into atomic filters, and runs the communication
/// analysis. The program is mutated (fission) and MUST be re-type-checked
/// by the caller before building when apply_fission is set; this function
/// does that internally via the provided re-check callback-free contract:
/// it re-runs Sema itself when fission changed anything.
PipelineModel build_pipeline_model(Program& program,
                                   DiagnosticEngine& diags,
                                   const PipelineBuildOptions& options = {});

}  // namespace cgp
