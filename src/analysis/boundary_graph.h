// Candidate filter boundary graph (§4.1).
//
// Nodes are candidate filter boundaries plus a distinguished start node
// (pre-dominating all others) and end node (post-dominating all others).
// An edge connects two boundaries that are adjacent: control can flow from
// the first to the second without crossing another candidate boundary.
// With loop fission applied and non-foreach loops confined to single
// filters, the graph is always acyclic; a flow path is any start->end path.
#pragma once

#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace cgp {

class CandidateBoundaryGraph {
 public:
  static constexpr int kStart = 0;

  CandidateBoundaryGraph();

  /// Adds a candidate boundary node; returns its id.
  int add_boundary(std::string label);
  /// Finalizes the end node (call after all boundaries are added).
  void set_end();
  int end_node() const { return end_; }

  void add_edge(int from, int to);

  int node_count() const { return static_cast<int>(labels_.size()); }
  const std::string& label(int node) const {
    return labels_[static_cast<std::size_t>(node)];
  }
  const std::vector<int>& successors(int node) const {
    return edges_[static_cast<std::size_t>(node)];
  }

  bool is_acyclic() const;

  /// All flow paths from start to end (each path lists node ids including
  /// start and end). Exponential in general; intended for the small graphs
  /// the compiler builds.
  std::vector<std::vector<int>> flow_paths() const;

  /// True when the graph is a single chain start -> b1 -> ... -> bn -> end.
  bool is_chain() const;

  /// Builds the common case: a linear chain over n candidate boundaries.
  static CandidateBoundaryGraph chain(const std::vector<std::string>& labels);

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<int>> edges_;
  int end_ = -1;
};

}  // namespace cgp
