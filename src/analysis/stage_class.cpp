#include "analysis/stage_class.h"

#include <map>

namespace cgp {
namespace {

/// Root variable of an lvalue chain (a[i].f -> "a"); empty when the
/// expression is not rooted at a named variable.
std::string root_base(const Expr& expr) {
  const Expr* e = &expr;
  while (e) {
    switch (e->kind) {
      case NodeKind::VarRef:
        return static_cast<const VarRef*>(e)->name;
      case NodeKind::FieldAccess:
        e = static_cast<const FieldAccess*>(e)->base.get();
        break;
      case NodeKind::Index:
        e = static_cast<const IndexExpr*>(e)->base.get();
        break;
      default:
        return {};
    }
  }
  return {};
}

/// Mutation facts gathered from one filter's statements.
struct WriteFacts {
  std::set<std::string> written;  // root bases of stores / inc-dec / calls
  bool unknown_call = false;      // unqualified non-intrinsic call seen
};

/// Per-loop-body declaration facts shared by all filters.
struct DeclFacts {
  std::set<std::string> declared;              // every loop-body VarDecl name
  std::map<std::string, std::string> aliases;  // ref decl -> init root base
};

void collect_decls(const Stmt& stmt, DeclFacts& facts);

void collect_decls_in_expr(const Expr&, DeclFacts&) {}

void collect_decls(const Stmt& stmt, DeclFacts& facts) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      facts.declared.insert(decl.name);
      // `Tri t = tris[j]` binds t as an alias of tris' storage: writes
      // through t must be attributed to tris, not to the local name.
      if (decl.init && decl.declared_type && decl.declared_type->is_reference()
          && decl.init->kind != NodeKind::NewObject &&
          decl.init->kind != NodeKind::NewArray) {
        std::string root = root_base(*decl.init);
        if (!root.empty() && root != decl.name)
          facts.aliases.emplace(decl.name, root);
      }
      break;
    }
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_decls(*s, facts);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_decls(*if_stmt.then_branch, facts);
      if (if_stmt.else_branch) collect_decls(*if_stmt.else_branch, facts);
      break;
    }
    case NodeKind::WhileStmt:
      collect_decls(*static_cast<const WhileStmt&>(stmt).body, facts);
      break;
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_decls(*loop.init, facts);
      collect_decls(*loop.body, facts);
      break;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      facts.declared.insert(loop.var);
      collect_decls(*loop.body, facts);
      break;
    }
    case NodeKind::PipelinedLoopStmt:
      collect_decls(*static_cast<const PipelinedLoopStmt&>(stmt).body, facts);
      break;
    default:
      break;
  }
}

void collect_writes(const Expr& expr, WriteFacts& facts);

void note_target(const Expr& target, WriteFacts& facts) {
  std::string root = root_base(target);
  if (!root.empty()) facts.written.insert(root);
}

void collect_writes(const Expr& expr, WriteFacts& facts) {
  switch (expr.kind) {
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      note_target(*assign.target, facts);
      collect_writes(*assign.target, facts);
      collect_writes(*assign.value, facts);
      break;
    }
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
          unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec) {
        note_target(*unary.operand, facts);
      }
      collect_writes(*unary.operand, facts);
      break;
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_writes(*binary.lhs, facts);
      collect_writes(*binary.rhs, facts);
      break;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) {
        // A method may mutate its receiver; assume it does.
        note_target(*call.base, facts);
        collect_writes(*call.base, facts);
      } else if (!call.is_intrinsic) {
        // An unqualified call can reach enclosing-class fields that this
        // walk cannot see; give up on replicating the filter.
        facts.unknown_call = true;
      }
      for (const ExprPtr& arg : call.args) {
        // Reference-typed actuals may be mutated by the callee.
        if (!call.is_intrinsic && arg->type && arg->type->is_reference())
          note_target(*arg, facts);
        collect_writes(*arg, facts);
      }
      break;
    }
    case NodeKind::NewObject: {
      const auto& alloc = static_cast<const NewObjectExpr&>(expr);
      for (const ExprPtr& arg : alloc.args) {
        if (arg->type && arg->type->is_reference()) note_target(*arg, facts);
        collect_writes(*arg, facts);
      }
      break;
    }
    case NodeKind::NewArray: {
      const auto& alloc = static_cast<const NewArrayExpr&>(expr);
      if (alloc.length) collect_writes(*alloc.length, facts);
      break;
    }
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      collect_writes(*index.base, facts);
      for (const ExprPtr& i : index.indices) collect_writes(*i, facts);
      break;
    }
    case NodeKind::FieldAccess:
      collect_writes(*static_cast<const FieldAccess&>(expr).base, facts);
      break;
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_writes(*cond.cond, facts);
      collect_writes(*cond.then_value, facts);
      collect_writes(*cond.else_value, facts);
      break;
    }
    case NodeKind::RectdomainLit: {
      const auto& dom = static_cast<const RectdomainLit&>(expr);
      for (const auto& dim : dom.dims) {
        collect_writes(*dim.lo, facts);
        collect_writes(*dim.hi, facts);
      }
      break;
    }
    default:
      break;
  }
}

void collect_writes(const Stmt& stmt, WriteFacts& facts) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) collect_writes(*decl.init, facts);
      break;
    }
    case NodeKind::ExprStmt:
      collect_writes(*static_cast<const ExprStmt&>(stmt).expr, facts);
      break;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_writes(*s, facts);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_writes(*if_stmt.cond, facts);
      collect_writes(*if_stmt.then_branch, facts);
      if (if_stmt.else_branch) collect_writes(*if_stmt.else_branch, facts);
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      collect_writes(*loop.cond, facts);
      collect_writes(*loop.body, facts);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_writes(*loop.init, facts);
      if (loop.cond) collect_writes(*loop.cond, facts);
      if (loop.step) collect_writes(*loop.step, facts);
      collect_writes(*loop.body, facts);
      break;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      collect_writes(*loop.domain, facts);
      collect_writes(*loop.body, facts);
      break;
    }
    case NodeKind::PipelinedLoopStmt: {
      const auto& loop = static_cast<const PipelinedLoopStmt&>(stmt);
      collect_writes(*loop.domain, facts);
      collect_writes(*loop.body, facts);
      break;
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) collect_writes(*ret.value, facts);
      break;
    }
    default:
      break;
  }
}

std::string join_names(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

const char* stage_class_name(StageClass cls) {
  return cls == StageClass::kParallel ? "parallel" : "sequential";
}

std::vector<char> PipelineClassification::parallel_flags() const {
  std::vector<char> flags;
  flags.reserve(filters.size());
  for (const FilterClassification& f : filters)
    flags.push_back(f.parallel() ? 1 : 0);
  return flags;
}

std::string PipelineClassification::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    out += "f" + std::to_string(i + 1) + ": " + filters[i].reason + "\n";
  }
  return out;
}

PipelineClassification classify_filters(const PipelineModel& model) {
  // Declarations anywhere in the loop body are per-packet: every packet
  // re-materializes them, so copies never share an instance — even when the
  // declaring filter is upstream of the writing one (the value travels with
  // the packet via ReqComm).
  DeclFacts decls;
  for (const AtomicFilter& filter : model.filters)
    for (const Stmt* stmt : filter.stmts) collect_decls(*stmt, decls);

  std::set<std::string> reductions;
  for (const auto& [name, decl] : model.reduction_decls)
    reductions.insert(name);

  PipelineClassification result;
  result.filters.reserve(model.filters.size());
  for (const AtomicFilter& filter : model.filters) {
    WriteFacts writes;
    for (const Stmt* stmt : filter.stmts) collect_writes(*stmt, writes);

    FilterClassification verdict;
    if (writes.unknown_call) {
      verdict.cls = StageClass::kSequential;
      verdict.reason = "sequential (call with unbounded effects)";
      result.filters.push_back(std::move(verdict));
      continue;
    }
    for (const std::string& raw : writes.written) {
      // Chase alias bindings (`Tri t = tris[j]`) to the underlying storage;
      // the chain is acyclic because an alias init precedes the decl.
      std::string name = raw;
      for (int hops = 0; hops < 16; ++hops) {
        auto it = decls.aliases.find(name);
        if (it == decls.aliases.end()) break;
        name = it->second;
      }
      if (reductions.count(name)) {
        verdict.reduction_writes.insert(name);
        continue;
      }
      if (decls.declared.count(name) || name == model.loop_var) continue;
      verdict.carried_writes.insert(name);
    }
    if (verdict.carried_writes.empty()) {
      verdict.cls = StageClass::kParallel;
      verdict.reason = verdict.reduction_writes.empty()
                           ? "parallel (stateless)"
                           : "parallel (reductions: " +
                                 join_names(verdict.reduction_writes) + ")";
    } else {
      verdict.cls = StageClass::kSequential;
      verdict.reason =
          "sequential (carries: " + join_names(verdict.carried_writes) + ")";
    }
    result.filters.push_back(std::move(verdict));
  }
  return result;
}

}  // namespace cgp
