#include "analysis/fission.h"

#include <functional>
#include <map>
#include <set>

namespace cgp {

namespace {

bool contains_call(const Expr& expr) {
  switch (expr.kind) {
    case NodeKind::Call:
      return !static_cast<const CallExpr&>(expr).is_intrinsic;
    case NodeKind::FieldAccess:
      return contains_call(*static_cast<const FieldAccess&>(expr).base);
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      if (contains_call(*index.base)) return true;
      for (const ExprPtr& i : index.indices)
        if (contains_call(*i)) return true;
      return false;
    }
    case NodeKind::Unary:
      return contains_call(*static_cast<const UnaryExpr&>(expr).operand);
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      return contains_call(*binary.lhs) || contains_call(*binary.rhs);
    }
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      return contains_call(*assign.target) || contains_call(*assign.value);
    }
    case NodeKind::NewObject: {
      const auto& alloc = static_cast<const NewObjectExpr&>(expr);
      // Constructor bodies execute user code: a boundary candidate.
      (void)alloc;
      return true;
    }
    case NodeKind::NewArray:
      return contains_call(*static_cast<const NewArrayExpr&>(expr).length);
    case NodeKind::RectdomainLit: {
      const auto& lit = static_cast<const RectdomainLit&>(expr);
      for (const auto& dim : lit.dims) {
        if (contains_call(*dim.lo) || contains_call(*dim.hi)) return true;
      }
      return false;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      return contains_call(*cond.cond) || contains_call(*cond.then_value) ||
             contains_call(*cond.else_value);
    }
    default:
      return false;
  }
}

bool stmt_contains_call(const Stmt& stmt) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      return decl.init && contains_call(*decl.init);
    }
    case NodeKind::ExprStmt:
      return contains_call(*static_cast<const ExprStmt&>(stmt).expr);
    case NodeKind::Block: {
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        if (stmt_contains_call(*s)) return true;
      return false;
    }
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      if (contains_call(*if_stmt.cond)) return true;
      if (stmt_contains_call(*if_stmt.then_branch)) return true;
      return if_stmt.else_branch && stmt_contains_call(*if_stmt.else_branch);
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      return contains_call(*loop.cond) || stmt_contains_call(*loop.body);
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init && stmt_contains_call(*loop.init)) return true;
      if (loop.cond && contains_call(*loop.cond)) return true;
      if (loop.step && contains_call(*loop.step)) return true;
      return stmt_contains_call(*loop.body);
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      return contains_call(*loop.domain) || stmt_contains_call(*loop.body);
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      return ret.value && contains_call(*ret.value);
    }
    default:
      return false;
  }
}

void collect_var_refs(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case NodeKind::VarRef:
      out.insert(static_cast<const VarRef&>(expr).name);
      return;
    case NodeKind::FieldAccess:
      collect_var_refs(*static_cast<const FieldAccess&>(expr).base, out);
      return;
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      collect_var_refs(*index.base, out);
      for (const ExprPtr& i : index.indices) collect_var_refs(*i, out);
      return;
    }
    case NodeKind::Unary:
      collect_var_refs(*static_cast<const UnaryExpr&>(expr).operand, out);
      return;
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      collect_var_refs(*binary.lhs, out);
      collect_var_refs(*binary.rhs, out);
      return;
    }
    case NodeKind::Assign: {
      const auto& assign = static_cast<const AssignExpr&>(expr);
      collect_var_refs(*assign.target, out);
      collect_var_refs(*assign.value, out);
      return;
    }
    case NodeKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (call.base) collect_var_refs(*call.base, out);
      for (const ExprPtr& a : call.args) collect_var_refs(*a, out);
      return;
    }
    case NodeKind::NewObject: {
      for (const ExprPtr& a :
           static_cast<const NewObjectExpr&>(expr).args)
        collect_var_refs(*a, out);
      return;
    }
    case NodeKind::NewArray:
      collect_var_refs(*static_cast<const NewArrayExpr&>(expr).length, out);
      return;
    case NodeKind::RectdomainLit: {
      for (const auto& dim : static_cast<const RectdomainLit&>(expr).dims) {
        collect_var_refs(*dim.lo, out);
        collect_var_refs(*dim.hi, out);
      }
      return;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      collect_var_refs(*cond.cond, out);
      collect_var_refs(*cond.then_value, out);
      collect_var_refs(*cond.else_value, out);
      return;
    }
    default:
      return;
  }
}

void collect_var_refs(const Stmt& stmt, std::set<std::string>& out) {
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) collect_var_refs(*decl.init, out);
      return;
    }
    case NodeKind::ExprStmt:
      collect_var_refs(*static_cast<const ExprStmt&>(stmt).expr, out);
      return;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_var_refs(*s, out);
      return;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      collect_var_refs(*if_stmt.cond, out);
      collect_var_refs(*if_stmt.then_branch, out);
      if (if_stmt.else_branch) collect_var_refs(*if_stmt.else_branch, out);
      return;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      collect_var_refs(*loop.cond, out);
      collect_var_refs(*loop.body, out);
      return;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_var_refs(*loop.init, out);
      if (loop.cond) collect_var_refs(*loop.cond, out);
      if (loop.step) collect_var_refs(*loop.step, out);
      collect_var_refs(*loop.body, out);
      return;
    }
    case NodeKind::ForeachStmt: {
      const auto& loop = static_cast<const ForeachStmt&>(stmt);
      collect_var_refs(*loop.domain, out);
      collect_var_refs(*loop.body, out);
      return;
    }
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) collect_var_refs(*ret.value, out);
      return;
    }
    default:
      return;
  }
}

/// Substitution map: variable name -> factory producing a replacement
/// expression (a fresh clone per occurrence).
using Subst = std::map<std::string, std::function<ExprPtr()>>;

ExprPtr transform_expr(const Expr& expr, const Subst& subst);

StmtPtr transform_stmt(const Stmt& stmt, const Subst& subst) {
  StmtPtr cloned = clone_stmt(stmt);
  // Easiest correct implementation: clone, then rebuild expressions with
  // substitution. We re-walk the clone and replace expression children.
  std::function<void(Stmt&)> walk_stmt = [&](Stmt& s) {
    switch (s.kind) {
      case NodeKind::VarDeclStmt: {
        auto& decl = static_cast<VarDeclStmt&>(s);
        if (decl.init) decl.init = transform_expr(*decl.init, subst);
        break;
      }
      case NodeKind::ExprStmt: {
        auto& es = static_cast<ExprStmt&>(s);
        es.expr = transform_expr(*es.expr, subst);
        break;
      }
      case NodeKind::Block:
        for (StmtPtr& inner : static_cast<BlockStmt&>(s).statements)
          walk_stmt(*inner);
        break;
      case NodeKind::IfStmt: {
        auto& if_stmt = static_cast<IfStmt&>(s);
        if_stmt.cond = transform_expr(*if_stmt.cond, subst);
        walk_stmt(*if_stmt.then_branch);
        if (if_stmt.else_branch) walk_stmt(*if_stmt.else_branch);
        break;
      }
      case NodeKind::WhileStmt: {
        auto& loop = static_cast<WhileStmt&>(s);
        loop.cond = transform_expr(*loop.cond, subst);
        walk_stmt(*loop.body);
        break;
      }
      case NodeKind::ForStmt: {
        auto& loop = static_cast<ForStmt&>(s);
        if (loop.init) walk_stmt(*loop.init);
        if (loop.cond) loop.cond = transform_expr(*loop.cond, subst);
        if (loop.step) loop.step = transform_expr(*loop.step, subst);
        walk_stmt(*loop.body);
        break;
      }
      case NodeKind::ForeachStmt: {
        auto& loop = static_cast<ForeachStmt&>(s);
        loop.domain = transform_expr(*loop.domain, subst);
        walk_stmt(*loop.body);
        break;
      }
      case NodeKind::ReturnStmt: {
        auto& ret = static_cast<ReturnStmt&>(s);
        if (ret.value) ret.value = transform_expr(*ret.value, subst);
        break;
      }
      default:
        break;
    }
  };
  walk_stmt(*cloned);
  return cloned;
}

ExprPtr transform_expr(const Expr& expr, const Subst& subst) {
  if (expr.kind == NodeKind::VarRef) {
    const auto& ref = static_cast<const VarRef&>(expr);
    auto it = subst.find(ref.name);
    if (it != subst.end()) return it->second();
    return clone_expr(expr);
  }
  ExprPtr cloned = clone_expr(expr);
  std::function<void(Expr&)> walk = [&](Expr& e) {
    auto fix = [&](ExprPtr& child) {
      if (!child) return;
      if (child->kind == NodeKind::VarRef) {
        const auto& ref = static_cast<const VarRef&>(*child);
        auto it = subst.find(ref.name);
        if (it != subst.end()) {
          child = it->second();
          return;
        }
      }
      walk(*child);
    };
    switch (e.kind) {
      case NodeKind::FieldAccess: fix(static_cast<FieldAccess&>(e).base); break;
      case NodeKind::Index: {
        auto& index = static_cast<IndexExpr&>(e);
        fix(index.base);
        for (ExprPtr& i : index.indices) fix(i);
        break;
      }
      case NodeKind::Unary: fix(static_cast<UnaryExpr&>(e).operand); break;
      case NodeKind::Binary: {
        auto& binary = static_cast<BinaryExpr&>(e);
        fix(binary.lhs);
        fix(binary.rhs);
        break;
      }
      case NodeKind::Assign: {
        auto& assign = static_cast<AssignExpr&>(e);
        fix(assign.target);
        fix(assign.value);
        break;
      }
      case NodeKind::Call: {
        auto& call = static_cast<CallExpr&>(e);
        fix(call.base);
        for (ExprPtr& a : call.args) fix(a);
        break;
      }
      case NodeKind::NewObject:
        for (ExprPtr& a : static_cast<NewObjectExpr&>(e).args) fix(a);
        break;
      case NodeKind::NewArray: fix(static_cast<NewArrayExpr&>(e).length); break;
      case NodeKind::RectdomainLit:
        for (auto& dim : static_cast<RectdomainLit&>(e).dims) {
          fix(dim.lo);
          fix(dim.hi);
        }
        break;
      case NodeKind::Conditional: {
        auto& cond = static_cast<ConditionalExpr&>(e);
        fix(cond.cond);
        fix(cond.then_value);
        fix(cond.else_value);
        break;
      }
      default:
        break;
    }
  };
  walk(*cloned);
  return cloned;
}

/// Collects bare-variable assignment/inc-dec targets below stmt (declaring
/// initializers do not count).
void collect_assigned_targets(const Stmt& stmt, std::set<std::string>& out) {
  std::function<void(const Expr&)> walk_expr = [&](const Expr& e) {
    switch (e.kind) {
      case NodeKind::Assign: {
        const auto& assign = static_cast<const AssignExpr&>(e);
        if (assign.target->kind == NodeKind::VarRef)
          out.insert(static_cast<const VarRef&>(*assign.target).name);
        walk_expr(*assign.value);
        break;
      }
      case NodeKind::Unary: {
        const auto& unary = static_cast<const UnaryExpr&>(e);
        if ((unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
             unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec) &&
            unary.operand->kind == NodeKind::VarRef)
          out.insert(static_cast<const VarRef&>(*unary.operand).name);
        walk_expr(*unary.operand);
        break;
      }
      case NodeKind::Binary: {
        const auto& binary = static_cast<const BinaryExpr&>(e);
        walk_expr(*binary.lhs);
        walk_expr(*binary.rhs);
        break;
      }
      case NodeKind::Call: {
        const auto& call = static_cast<const CallExpr&>(e);
        if (call.base) walk_expr(*call.base);
        for (const ExprPtr& a : call.args) walk_expr(*a);
        break;
      }
      case NodeKind::Conditional: {
        const auto& cond = static_cast<const ConditionalExpr&>(e);
        walk_expr(*cond.cond);
        walk_expr(*cond.then_value);
        walk_expr(*cond.else_value);
        break;
      }
      case NodeKind::FieldAccess:
        walk_expr(*static_cast<const FieldAccess&>(e).base);
        break;
      case NodeKind::Index: {
        const auto& index = static_cast<const IndexExpr&>(e);
        walk_expr(*index.base);
        for (const ExprPtr& i : index.indices) walk_expr(*i);
        break;
      }
      default:
        break;
    }
  };
  switch (stmt.kind) {
    case NodeKind::VarDeclStmt: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      if (decl.init) walk_expr(*decl.init);
      break;
    }
    case NodeKind::ExprStmt:
      walk_expr(*static_cast<const ExprStmt&>(stmt).expr);
      break;
    case NodeKind::Block:
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
        collect_assigned_targets(*s, out);
      break;
    case NodeKind::IfStmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      walk_expr(*if_stmt.cond);
      collect_assigned_targets(*if_stmt.then_branch, out);
      if (if_stmt.else_branch) collect_assigned_targets(*if_stmt.else_branch, out);
      break;
    }
    case NodeKind::WhileStmt: {
      const auto& loop = static_cast<const WhileStmt&>(stmt);
      walk_expr(*loop.cond);
      collect_assigned_targets(*loop.body, out);
      break;
    }
    case NodeKind::ForStmt: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      if (loop.init) collect_assigned_targets(*loop.init, out);
      if (loop.cond) walk_expr(*loop.cond);
      if (loop.step) walk_expr(*loop.step);
      collect_assigned_targets(*loop.body, out);
      break;
    }
    case NodeKind::ForeachStmt:
      collect_assigned_targets(*static_cast<const ForeachStmt&>(stmt).body,
                               out);
      break;
    case NodeKind::ReturnStmt: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      if (ret.value) walk_expr(*ret.value);
      break;
    }
    default:
      break;
  }
}

ExprPtr make_var(const std::string& name) {
  auto ref = std::make_unique<VarRef>();
  ref->name = name;
  return ref;
}

ExprPtr make_int(std::int64_t value) {
  auto lit = std::make_unique<IntLit>();
  lit->value = value;
  return lit;
}

ExprPtr make_sub(ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_unique<BinaryExpr>();
  expr->op = BinaryOp::Sub;
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}

bool is_zero_literal(const Expr& expr) {
  return expr.kind == NodeKind::IntLit &&
         static_cast<const IntLit&>(expr).value == 0;
}

}  // namespace

bool is_pure_expr(const Expr& expr) {
  switch (expr.kind) {
    case NodeKind::Call:
    case NodeKind::NewObject:
    case NodeKind::NewArray:
    case NodeKind::Assign:
      return false;
    case NodeKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PreDec ||
          unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec)
        return false;
      return is_pure_expr(*unary.operand);
    }
    case NodeKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      return is_pure_expr(*binary.lhs) && is_pure_expr(*binary.rhs);
    }
    case NodeKind::FieldAccess:
      return is_pure_expr(*static_cast<const FieldAccess&>(expr).base);
    case NodeKind::Index: {
      const auto& index = static_cast<const IndexExpr&>(expr);
      if (!is_pure_expr(*index.base)) return false;
      for (const ExprPtr& i : index.indices)
        if (!is_pure_expr(*i)) return false;
      return true;
    }
    case NodeKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      return is_pure_expr(*cond.cond) && is_pure_expr(*cond.then_value) &&
             is_pure_expr(*cond.else_value);
    }
    case NodeKind::RectdomainLit: {
      for (const auto& dim : static_cast<const RectdomainLit&>(expr).dims) {
        if (!is_pure_expr(*dim.lo) || !is_pure_expr(*dim.hi)) return false;
      }
      return true;
    }
    default:
      return true;  // literals, VarRef
  }
}

bool is_piece_splitter(const Stmt& stmt) {
  if (stmt.kind == NodeKind::IfStmt) return true;
  return stmt_contains_call(stmt);
}

namespace {

/// Attempts to fission one foreach; returns the replacement statements or
/// an empty vector when no fission applies.
std::vector<StmtPtr> try_fission(const ForeachStmt& loop,
                                 DiagnosticEngine& diags, FissionStats& stats) {
  if (loop.body->kind != NodeKind::Block) return {};
  const auto& body = static_cast<const BlockStmt&>(*loop.body);

  // Partition the body into pieces.
  std::vector<std::vector<const Stmt*>> pieces;
  for (const StmtPtr& s : body.statements) {
    if (is_piece_splitter(*s)) {
      pieces.push_back({s.get()});
    } else {
      if (pieces.empty() || is_piece_splitter(*pieces.back().front()))
        pieces.emplace_back();
      pieces.back().push_back(s.get());
    }
  }
  if (pieces.size() <= 1) return {};

  if (!is_pure_expr(*loop.domain)) {
    diags.warning(loop.location, "fission",
                  "foreach domain has side effects; fission skipped");
    return {};
  }

  // Normalize to index iteration.
  const bool element_iteration =
      loop.domain->type && loop.domain->type->is_array();
  std::string idx = element_iteration ? loop.var + "__ix" : loop.var;

  // Domain for the pieces and the zero-based offset of the index.
  auto make_domain = [&]() -> ExprPtr {
    if (!element_iteration) return clone_expr(*loop.domain);
    auto lit = std::make_unique<RectdomainLit>();
    RectdomainLit::Dim dim;
    dim.lo = make_int(0);
    auto len = std::make_unique<FieldAccess>();
    len->base = clone_expr(*loop.domain);
    len->field = "length";
    dim.hi = make_sub(std::move(len), make_int(1));
    lit->dims.push_back(std::move(dim));
    return lit;
  };
  // lo bound of the index domain, for array offsets (idx - lo).
  const Expr* domain_lo = nullptr;
  if (!element_iteration && loop.domain->kind == NodeKind::RectdomainLit) {
    const auto& lit = static_cast<const RectdomainLit&>(*loop.domain);
    if (lit.dims.size() == 1) domain_lo = lit.dims[0].lo.get();
  }
  if (!element_iteration && !domain_lo) {
    diags.warning(loop.location, "fission",
                  "foreach domain is not a rank-1 rectdomain literal; "
                  "fission skipped");
    return {};
  }
  auto make_offset = [&]() -> ExprPtr {
    if (element_iteration || is_zero_literal(*domain_lo)) return make_var(idx);
    return make_sub(make_var(idx), clone_expr(*domain_lo));
  };
  auto make_size = [&]() -> ExprPtr {
    if (element_iteration) {
      auto len = std::make_unique<FieldAccess>();
      len->base = clone_expr(*loop.domain);
      len->field = "length";
      return len;
    }
    const auto& lit = static_cast<const RectdomainLit&>(*loop.domain);
    // hi - lo + 1
    auto hi_minus_lo = make_sub(clone_expr(*lit.dims[0].hi),
                                clone_expr(*lit.dims[0].lo));
    auto expr = std::make_unique<BinaryExpr>();
    expr->op = BinaryOp::Add;
    expr->lhs = std::move(hi_minus_lo);
    expr->rhs = make_int(1);
    return expr;
  };

  // Classify body-level locals. A local reassigned anywhere in the body
  // cannot be rematerialized from its initializer.
  std::set<std::string> reassigned;
  for (const StmtPtr& s : body.statements)
    collect_assigned_targets(*s, reassigned);

  struct LocalInfo {
    const VarDeclStmt* decl = nullptr;
    bool remat = false;
    std::string array_name;  // expansion target
  };
  std::map<std::string, LocalInfo> locals;
  std::vector<std::string> local_order;
  for (const StmtPtr& s : body.statements) {
    if (s->kind != NodeKind::VarDeclStmt) continue;
    const auto& decl = static_cast<const VarDeclStmt&>(*s);
    LocalInfo info;
    info.decl = &decl;
    info.remat = decl.init && is_pure_expr(*decl.init) &&
                 !reassigned.count(decl.name);
    if (!info.remat) {
      info.array_name =
          "__fiss_" + decl.name + "_" + std::to_string(loop.loop_id);
    }
    locals[decl.name] = info;
    local_order.push_back(decl.name);
  }

  // Build the substitution for expanded locals and (if needed) the element
  // variable. The element variable is rematerialized via a binding decl.
  Subst subst;
  for (const auto& [name, info] : locals) {
    if (info.remat) continue;
    std::string array_name = info.array_name;
    subst[name] = [array_name, &make_offset]() -> ExprPtr {
      auto index = std::make_unique<IndexExpr>();
      index->base = make_var(array_name);
      index->indices.push_back(make_offset());
      return index;
    };
  }

  std::vector<StmtPtr> result;

  // Expansion arrays, allocated once before the pieces.
  for (const std::string& name : local_order) {
    const LocalInfo& info = locals[name];
    if (info.remat) continue;
    auto decl = std::make_unique<VarDeclStmt>();
    decl->location = info.decl->location;
    decl->declared_type = Type::array_of(info.decl->declared_type);
    decl->name = info.array_name;
    auto alloc = std::make_unique<NewArrayExpr>();
    alloc->element_type = info.decl->declared_type;
    alloc->length = make_size();
    decl->init = std::move(alloc);
    result.push_back(std::move(decl));
    ++stats.locals_expanded;
  }

  for (const std::string& name : local_order) {
    if (locals[name].remat) ++stats.locals_rematerialized;
  }

  // Emit one foreach per piece.
  for (const std::vector<const Stmt*>& piece : pieces) {
    auto fe = std::make_unique<ForeachStmt>();
    fe->location = loop.location;
    fe->var = idx;
    fe->domain = make_domain();
    auto block = std::make_unique<BlockStmt>();
    block->location = loop.location;

    // Names this piece references (directly or via remat chains).
    std::set<std::string> used;
    for (const Stmt* s : piece) collect_var_refs(*s, used);
    // Transitive closure over remat initializers, walking decls backwards.
    for (auto it = local_order.rbegin(); it != local_order.rend(); ++it) {
      const LocalInfo& info = locals[*it];
      if (info.remat && used.count(*it) && info.decl->init) {
        collect_var_refs(*info.decl->init, used);
      }
    }

    // Element binding first (when normalizing element iteration).
    if (element_iteration && used.count(loop.var)) {
      auto bind = std::make_unique<VarDeclStmt>();
      bind->location = loop.location;
      bind->declared_type = loop.domain->type->element();
      bind->name = loop.var;
      auto index = std::make_unique<IndexExpr>();
      index->base = clone_expr(*loop.domain);
      index->indices.push_back(make_var(idx));
      bind->init = transform_expr(*index, subst);
      block->statements.push_back(std::move(bind));
    }
    // Rematerialized locals in declaration order, when used and not
    // declared inside this piece itself.
    std::set<std::string> declared_here;
    for (const Stmt* s : piece) {
      if (s->kind == NodeKind::VarDeclStmt)
        declared_here.insert(static_cast<const VarDeclStmt&>(*s).name);
    }
    for (const std::string& name : local_order) {
      const LocalInfo& info = locals[name];
      if (!info.remat || !used.count(name) || declared_here.count(name))
        continue;
      auto remat = std::make_unique<VarDeclStmt>();
      remat->location = info.decl->location;
      remat->declared_type = info.decl->declared_type;
      remat->name = name;
      remat->init = transform_expr(*info.decl->init, subst);
      block->statements.push_back(std::move(remat));
    }

    // The piece statements themselves, with expanded locals substituted and
    // expanded decls rewritten to array stores.
    for (const Stmt* s : piece) {
      if (s->kind == NodeKind::VarDeclStmt) {
        const auto& decl = static_cast<const VarDeclStmt&>(*s);
        const LocalInfo& info = locals[decl.name];
        if (!info.remat) {
          if (decl.init) {
            auto store = std::make_unique<AssignExpr>();
            store->location = decl.location;
            auto index = std::make_unique<IndexExpr>();
            index->base = make_var(info.array_name);
            index->indices.push_back(make_offset());
            store->target = std::move(index);
            store->value = transform_expr(*decl.init, subst);
            auto es = std::make_unique<ExprStmt>();
            es->location = decl.location;
            es->expr = std::move(store);
            block->statements.push_back(std::move(es));
          }
          continue;
        }
        // Rematerialized decl inside its own piece: keep as-is (transformed).
      }
      block->statements.push_back(transform_stmt(*s, subst));
    }
    fe->body = std::move(block);
    result.push_back(std::move(fe));
    ++stats.pieces_created;
  }
  return result;
}

}  // namespace

FissionStats fission_pipelined_body(PipelinedLoopStmt& loop,
                                    DiagnosticEngine& diags) {
  FissionStats stats;
  if (loop.body->kind != NodeKind::Block) return stats;
  auto& body = static_cast<BlockStmt&>(*loop.body);
  std::vector<StmtPtr> rebuilt;
  for (StmtPtr& s : body.statements) {
    if (s->kind == NodeKind::ForeachStmt) {
      ++stats.loops_examined;
      auto& fe = static_cast<ForeachStmt&>(*s);
      std::vector<StmtPtr> replacement = try_fission(fe, diags, stats);
      if (!replacement.empty()) {
        ++stats.loops_fissioned;
        for (StmtPtr& r : replacement) rebuilt.push_back(std::move(r));
        continue;
      }
    }
    rebuilt.push_back(std::move(s));
  }
  body.statements = std::move(rebuilt);
  return stats;
}

}  // namespace cgp
