// k-nearest-neighbor example (§6.4): compiler-decomposed vs Default vs
// hand-written DataCutter pipeline, for k = 3 and k = 200.
#include <cstdio>

#include "apps/app_configs.h"
#include "apps/manual_filters.h"
#include "driver/compiler.h"
#include "driver/simulate.h"



int main() {
  using namespace cgp;
  for (std::int64_t k : {3, 200}) {
    apps::AppConfig config = apps::knn_config(k);
    std::printf("--- %s ---\n", config.name.c_str());
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);

    CompileOptions options;
    options.env = env;
    options.runtime_constants = config.runtime_constants;
    options.size_bindings = config.size_bindings;
    options.n_packets = config.n_packets;
    CompileResult result = compile_pipeline(config.source, options);
    if (!result.ok) {
      std::fprintf(stderr, "compile failed:\n%s\n",
                   result.diagnostics.c_str());
      return 1;
    }

    PipelineRunResult fallback = result.make_runner(result.baseline, env).run();
    PipelineRunResult decomp =
        result.make_runner(result.decomposition.placement, env).run();
    PipelineRunResult manual =
        apps::run_knn_manual(config.runtime_constants, env);

    std::printf("  Default        : sim %8.4f s, link0 %8lld B/run\n",
                cgp::simulate_run(fallback, env),
                static_cast<long long>(fallback.link_packet_bytes[0]));
    std::printf("  Decomp-Comp    : sim %8.4f s, link0 %8lld B/run\n",
                cgp::simulate_run(decomp, env),
                static_cast<long long>(decomp.link_packet_bytes[0]));
    std::printf("  Decomp-Manual  : sim %8.4f s, link0 %8lld B/run\n",
                cgp::simulate_run(manual, env),
                static_cast<long long>(manual.link_packet_bytes[0]));
    std::printf("  kth distance   : %s (all versions agree)\n\n",
                value_to_string(decomp.finals.at("kth")).c_str());
  }
  return 0;
}
