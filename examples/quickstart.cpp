// Quickstart: compile a small dialect program, inspect the compiler's
// analysis (atomic filters, Gen/Cons, ReqComm, decomposition), then run the
// decomposed pipeline on the DataCutter runtime and print the result.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "apps/app_configs.h"
#include "driver/compiler.h"

int main() {
  using namespace cgp;

  apps::AppConfig config = apps::tiny_config(/*items=*/4096, /*packets=*/16);

  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(/*width=*/1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;

  CompileResult result = compile_pipeline(config.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "compilation failed:\n%s\n",
                 result.diagnostics.c_str());
    return 1;
  }

  std::printf("=== cgpipe quickstart ===\n\n");
  std::printf("Atomic filters (%zu) and their communication sets:\n",
              result.model.filters.size());
  for (std::size_t i = 0; i < result.model.filters.size(); ++i) {
    std::printf("  f%zu  %-18s gen=%s\n", i + 1,
                result.model.filters[i].label.c_str(),
                result.model.sets[i].gen.to_string().c_str());
    std::printf("      %-18s cons=%s\n", "",
                result.model.sets[i].cons.to_string().c_str());
    std::printf("      ReqComm after: %s\n",
                result.model.req_comm[i].to_string().c_str());
  }
  std::printf("\nInput requirement: %s\n",
              result.model.input_req.to_string().c_str());

  std::printf("\nDP decomposition (%s), per-packet latency %.3g s\n",
              result.decomposition.placement.to_string().c_str(),
              result.decomposition.cost);
  std::printf("Default baseline:  %s\n\n",
              result.baseline.to_string().c_str());

  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, options.env).run();
  std::printf("Ran %lld packets through the DataCutter runtime.\n",
              static_cast<long long>(run.packets));
  std::printf("Link bytes (data->compute): %lld\n",
              static_cast<long long>(run.link_packet_bytes[0]));
  for (const auto& [name, value] : run.finals) {
    std::printf("final %-10s = %s\n", name.c_str(),
                value_to_string(value).c_str());
  }
  return 0;
}
