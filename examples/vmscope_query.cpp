// Virtual microscope example (§6.5): small vs large query, compiler vs
// manual subsampling, pipeline widths.
#include <cstdio>

#include "apps/app_configs.h"
#include "apps/manual_filters.h"
#include "driver/compiler.h"
#include "driver/simulate.h"



int main() {
  using namespace cgp;
  for (bool large : {false, true}) {
    apps::AppConfig config = apps::vmscope_config(large);
    std::printf("--- %s ---\n", config.name.c_str());
    for (int width : {1, 2, 4}) {
      EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
      CompileOptions options;
      options.env = env;
      options.runtime_constants = config.runtime_constants;
      options.size_bindings = config.size_bindings;
      options.n_packets = config.n_packets;
      CompileResult result = compile_pipeline(config.source, options);
      if (!result.ok) {
        std::fprintf(stderr, "compile failed:\n%s\n",
                     result.diagnostics.c_str());
        return 1;
      }
      PipelineRunResult fallback =
          result.make_runner(result.baseline, env).run();
      PipelineRunResult decomp =
          result.make_runner(result.decomposition.placement, env).run();
      PipelineRunResult manual =
          apps::run_vmscope_manual(config.runtime_constants, env);
      std::printf(
          "  width %d: Default %8.4f s | Decomp-Comp %8.4f s | "
          "Decomp-Manual %8.4f s\n",
          width, cgp::simulate_run(fallback, env), cgp::simulate_run(decomp, env),
          cgp::simulate_run(manual, env));
    }
    std::printf("\n");
  }
  return 0;
}
