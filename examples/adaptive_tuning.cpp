// Future-work extensions demo (§8): profile-guided decomposition and
// automatic packet-size selection, on the knn application.
#include <cstdio>

#include "apps/app_configs.h"
#include "driver/adaptive.h"
#include "driver/simulate.h"

int main() {
  using namespace cgp;
  apps::AppConfig config = apps::knn_config(3);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  CompileOptions options;
  options.env = env;
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;

  CompileResult result = compile_pipeline(config.source, options);
  if (!result.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }

  std::printf("=== Profile-guided decomposition (knn, k=3) ===\n");
  std::printf("static estimate:   ");
  for (std::size_t i = 0; i < result.decomp_input.task_ops.size(); ++i) {
    std::printf("f%zu=%.3g ", i + 1, result.decomp_input.task_ops[i]);
  }
  std::printf("\n");
  DecompositionInput measured = profile_decomposition_input(
      result.model, result.decomp_input, config.runtime_constants, 4);
  std::printf("profiled (4 pkts): ");
  for (std::size_t i = 0; i < measured.task_ops.size(); ++i) {
    std::printf("f%zu=%.3g ", i + 1, measured.task_ops[i]);
  }
  std::printf("\n");
  DecompositionResult guided =
      decompose_bruteforce(measured, Objective::PipelineTotal,
                           config.n_packets);
  std::printf("static placement:  %s\n",
              result.decomposition.placement.to_string().c_str());
  std::printf("guided placement:  %s\n", guided.placement.to_string().c_str());
  std::printf("predicted total (measured costs): static %.5f s, guided %.5f s\n\n",
              full_pipeline_time(measured, result.decomposition.placement,
                                 config.n_packets),
              full_pipeline_time(measured, guided.placement, config.n_packets));

  std::printf("=== Automatic packet-size selection ===\n");
  PacketSizeChoice choice = choose_packet_count(
      config.source, options, "runtime_define_num_packets",
      {2, 6, 12, 24, 48, 96, 384, 1536});
  std::printf("%-10s %14s\n", "packets", "predicted (s)");
  for (const auto& [count, t] : choice.table) {
    std::printf("%-10lld %14.6f%s\n", static_cast<long long>(count), t,
                count == choice.best_count ? "   <-- chosen" : "");
  }
  return 0;
}
