// Isosurface rendering example (§6.3): compiles both isosurface dialect
// programs (z-buffer and active pixels), shows the decomposition the
// compiler picks, runs Default vs Decomp at widths 1/2/4, and reports
// simulated pipeline times on the paper's cluster model.
#include <cstdio>

#include "apps/app_configs.h"
#include "driver/compiler.h"
#include "driver/simulate.h"

namespace {

void run_variant(const cgp::apps::AppConfig& config) {
  using namespace cgp;
  std::printf("--- %s ---\n", config.name.c_str());
  for (int width : {1, 2, 4}) {
    CompileOptions options;
    options.env = EnvironmentSpec::paper_cluster(width);
    options.runtime_constants = config.runtime_constants;
    options.size_bindings = config.size_bindings;
    options.n_packets = config.n_packets;
    CompileResult result = compile_pipeline(config.source, options);
    if (!result.ok) {
      std::fprintf(stderr, "compile failed:\n%s\n",
                   result.diagnostics.c_str());
      return;
    }
    for (bool decomp : {false, true}) {
      const Placement& placement =
          decomp ? result.decomposition.placement : result.baseline;
      PipelineRunResult run =
          result.make_runner(placement, options.env).run();
      SimResult sim = simulate_run_full(run, options.env);
      std::printf(
          "  width %d  %-8s placement %-24s sim time %8.4f s  "
          "(bottleneck %s)\n",
          width, decomp ? "Decomp" : "Default",
          placement.to_string().c_str(), sim.total_time,
          sim.bottleneck_name.c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  run_variant(cgp::apps::isosurface_zbuffer_config(/*large=*/false));
  run_variant(cgp::apps::isosurface_active_pixels_config(/*large=*/false));
  return 0;
}
