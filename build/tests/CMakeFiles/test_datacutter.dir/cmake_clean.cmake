file(REMOVE_RECURSE
  "CMakeFiles/test_datacutter.dir/test_datacutter.cpp.o"
  "CMakeFiles/test_datacutter.dir/test_datacutter.cpp.o.d"
  "test_datacutter"
  "test_datacutter.pdb"
  "test_datacutter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datacutter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
