# Empty dependencies file for test_datacutter.
# This may be replaced when dependencies are built.
