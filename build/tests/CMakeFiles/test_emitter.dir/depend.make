# Empty dependencies file for test_emitter.
# This may be replaced when dependencies are built.
