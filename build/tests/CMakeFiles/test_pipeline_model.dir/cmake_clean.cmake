file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_model.dir/test_pipeline_model.cpp.o"
  "CMakeFiles/test_pipeline_model.dir/test_pipeline_model.cpp.o.d"
  "test_pipeline_model"
  "test_pipeline_model.pdb"
  "test_pipeline_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
