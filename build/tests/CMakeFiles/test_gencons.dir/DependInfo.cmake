
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gencons.cpp" "tests/CMakeFiles/test_gencons.dir/test_gencons.cpp.o" "gcc" "tests/CMakeFiles/test_gencons.dir/test_gencons.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cgp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/cgp_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/cgp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cgp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/cgp_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cgp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/datacutter/CMakeFiles/cgp_datacutter.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/cgp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/cgp_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/cgp_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/cgp_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
