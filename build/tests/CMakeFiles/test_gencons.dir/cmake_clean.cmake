file(REMOVE_RECURSE
  "CMakeFiles/test_gencons.dir/test_gencons.cpp.o"
  "CMakeFiles/test_gencons.dir/test_gencons.cpp.o.d"
  "test_gencons"
  "test_gencons.pdb"
  "test_gencons[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gencons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
