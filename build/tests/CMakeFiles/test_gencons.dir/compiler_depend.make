# Empty compiler generated dependencies file for test_gencons.
# This may be replaced when dependencies are built.
