# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sema[1]_include.cmake")
include("/root/repo/build/tests/test_gencons[1]_include.cmake")
include("/root/repo/build/tests/test_fission[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_model[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_decomp[1]_include.cmake")
include("/root/repo/build/tests/test_datacutter[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_packing[1]_include.cmake")
include("/root/repo/build/tests/test_emitter[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ast[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
