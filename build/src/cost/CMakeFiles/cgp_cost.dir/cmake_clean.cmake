file(REMOVE_RECURSE
  "CMakeFiles/cgp_cost.dir/environment.cpp.o"
  "CMakeFiles/cgp_cost.dir/environment.cpp.o.d"
  "CMakeFiles/cgp_cost.dir/opcount.cpp.o"
  "CMakeFiles/cgp_cost.dir/opcount.cpp.o.d"
  "CMakeFiles/cgp_cost.dir/volume.cpp.o"
  "CMakeFiles/cgp_cost.dir/volume.cpp.o.d"
  "libcgp_cost.a"
  "libcgp_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
