# Empty compiler generated dependencies file for cgp_cost.
# This may be replaced when dependencies are built.
