file(REMOVE_RECURSE
  "libcgp_cost.a"
)
