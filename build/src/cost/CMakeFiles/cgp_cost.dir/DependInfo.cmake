
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/environment.cpp" "src/cost/CMakeFiles/cgp_cost.dir/environment.cpp.o" "gcc" "src/cost/CMakeFiles/cgp_cost.dir/environment.cpp.o.d"
  "/root/repo/src/cost/opcount.cpp" "src/cost/CMakeFiles/cgp_cost.dir/opcount.cpp.o" "gcc" "src/cost/CMakeFiles/cgp_cost.dir/opcount.cpp.o.d"
  "/root/repo/src/cost/volume.cpp" "src/cost/CMakeFiles/cgp_cost.dir/volume.cpp.o" "gcc" "src/cost/CMakeFiles/cgp_cost.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cgp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/cgp_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/cgp_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
