
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/boundary_graph.cpp" "src/analysis/CMakeFiles/cgp_analysis.dir/boundary_graph.cpp.o" "gcc" "src/analysis/CMakeFiles/cgp_analysis.dir/boundary_graph.cpp.o.d"
  "/root/repo/src/analysis/fission.cpp" "src/analysis/CMakeFiles/cgp_analysis.dir/fission.cpp.o" "gcc" "src/analysis/CMakeFiles/cgp_analysis.dir/fission.cpp.o.d"
  "/root/repo/src/analysis/gencons.cpp" "src/analysis/CMakeFiles/cgp_analysis.dir/gencons.cpp.o" "gcc" "src/analysis/CMakeFiles/cgp_analysis.dir/gencons.cpp.o.d"
  "/root/repo/src/analysis/pipeline_model.cpp" "src/analysis/CMakeFiles/cgp_analysis.dir/pipeline_model.cpp.o" "gcc" "src/analysis/CMakeFiles/cgp_analysis.dir/pipeline_model.cpp.o.d"
  "/root/repo/src/analysis/value_set.cpp" "src/analysis/CMakeFiles/cgp_analysis.dir/value_set.cpp.o" "gcc" "src/analysis/CMakeFiles/cgp_analysis.dir/value_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sema/CMakeFiles/cgp_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/cgp_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
