# Empty dependencies file for cgp_analysis.
# This may be replaced when dependencies are built.
