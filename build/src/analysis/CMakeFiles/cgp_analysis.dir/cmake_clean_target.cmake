file(REMOVE_RECURSE
  "libcgp_analysis.a"
)
