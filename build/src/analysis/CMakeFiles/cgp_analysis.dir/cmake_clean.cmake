file(REMOVE_RECURSE
  "CMakeFiles/cgp_analysis.dir/boundary_graph.cpp.o"
  "CMakeFiles/cgp_analysis.dir/boundary_graph.cpp.o.d"
  "CMakeFiles/cgp_analysis.dir/fission.cpp.o"
  "CMakeFiles/cgp_analysis.dir/fission.cpp.o.d"
  "CMakeFiles/cgp_analysis.dir/gencons.cpp.o"
  "CMakeFiles/cgp_analysis.dir/gencons.cpp.o.d"
  "CMakeFiles/cgp_analysis.dir/pipeline_model.cpp.o"
  "CMakeFiles/cgp_analysis.dir/pipeline_model.cpp.o.d"
  "CMakeFiles/cgp_analysis.dir/value_set.cpp.o"
  "CMakeFiles/cgp_analysis.dir/value_set.cpp.o.d"
  "libcgp_analysis.a"
  "libcgp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
