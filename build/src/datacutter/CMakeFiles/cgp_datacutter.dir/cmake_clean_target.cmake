file(REMOVE_RECURSE
  "libcgp_datacutter.a"
)
