# Empty dependencies file for cgp_datacutter.
# This may be replaced when dependencies are built.
