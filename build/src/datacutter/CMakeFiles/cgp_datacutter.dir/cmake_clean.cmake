file(REMOVE_RECURSE
  "CMakeFiles/cgp_datacutter.dir/runner.cpp.o"
  "CMakeFiles/cgp_datacutter.dir/runner.cpp.o.d"
  "CMakeFiles/cgp_datacutter.dir/stream.cpp.o"
  "CMakeFiles/cgp_datacutter.dir/stream.cpp.o.d"
  "libcgp_datacutter.a"
  "libcgp_datacutter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_datacutter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
