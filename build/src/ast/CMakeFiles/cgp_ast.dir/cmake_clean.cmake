file(REMOVE_RECURSE
  "CMakeFiles/cgp_ast.dir/ast.cpp.o"
  "CMakeFiles/cgp_ast.dir/ast.cpp.o.d"
  "CMakeFiles/cgp_ast.dir/type.cpp.o"
  "CMakeFiles/cgp_ast.dir/type.cpp.o.d"
  "libcgp_ast.a"
  "libcgp_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
