# Empty compiler generated dependencies file for cgp_ast.
# This may be replaced when dependencies are built.
