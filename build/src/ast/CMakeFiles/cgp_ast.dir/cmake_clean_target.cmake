file(REMOVE_RECURSE
  "libcgp_ast.a"
)
