file(REMOVE_RECURSE
  "CMakeFiles/cgp_decomp.dir/decompose.cpp.o"
  "CMakeFiles/cgp_decomp.dir/decompose.cpp.o.d"
  "libcgp_decomp.a"
  "libcgp_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
