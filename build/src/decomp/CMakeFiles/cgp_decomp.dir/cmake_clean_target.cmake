file(REMOVE_RECURSE
  "libcgp_decomp.a"
)
