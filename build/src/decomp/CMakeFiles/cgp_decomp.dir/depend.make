# Empty dependencies file for cgp_decomp.
# This may be replaced when dependencies are built.
