file(REMOVE_RECURSE
  "libcgp_apps.a"
)
