# Empty compiler generated dependencies file for cgp_apps.
# This may be replaced when dependencies are built.
