file(REMOVE_RECURSE
  "CMakeFiles/cgp_apps.dir/app_configs.cpp.o"
  "CMakeFiles/cgp_apps.dir/app_configs.cpp.o.d"
  "CMakeFiles/cgp_apps.dir/dialect_sources.cpp.o"
  "CMakeFiles/cgp_apps.dir/dialect_sources.cpp.o.d"
  "CMakeFiles/cgp_apps.dir/manual_filters.cpp.o"
  "CMakeFiles/cgp_apps.dir/manual_filters.cpp.o.d"
  "libcgp_apps.a"
  "libcgp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
