file(REMOVE_RECURSE
  "libcgp_sema.a"
)
