# Empty dependencies file for cgp_sema.
# This may be replaced when dependencies are built.
