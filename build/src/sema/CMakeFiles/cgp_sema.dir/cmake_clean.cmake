file(REMOVE_RECURSE
  "CMakeFiles/cgp_sema.dir/sema.cpp.o"
  "CMakeFiles/cgp_sema.dir/sema.cpp.o.d"
  "libcgp_sema.a"
  "libcgp_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
