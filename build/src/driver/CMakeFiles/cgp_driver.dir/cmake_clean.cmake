file(REMOVE_RECURSE
  "CMakeFiles/cgp_driver.dir/adaptive.cpp.o"
  "CMakeFiles/cgp_driver.dir/adaptive.cpp.o.d"
  "CMakeFiles/cgp_driver.dir/compiler.cpp.o"
  "CMakeFiles/cgp_driver.dir/compiler.cpp.o.d"
  "CMakeFiles/cgp_driver.dir/simulate.cpp.o"
  "CMakeFiles/cgp_driver.dir/simulate.cpp.o.d"
  "libcgp_driver.a"
  "libcgp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
