# Empty dependencies file for cgp_driver.
# This may be replaced when dependencies are built.
