file(REMOVE_RECURSE
  "libcgp_driver.a"
)
