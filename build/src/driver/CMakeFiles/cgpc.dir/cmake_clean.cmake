file(REMOVE_RECURSE
  "CMakeFiles/cgpc.dir/cgpc_main.cpp.o"
  "CMakeFiles/cgpc.dir/cgpc_main.cpp.o.d"
  "cgpc"
  "cgpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
