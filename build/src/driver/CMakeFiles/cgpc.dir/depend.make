# Empty dependencies file for cgpc.
# This may be replaced when dependencies are built.
