# Empty dependencies file for cgp_sim.
# This may be replaced when dependencies are built.
