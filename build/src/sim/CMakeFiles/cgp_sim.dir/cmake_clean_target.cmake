file(REMOVE_RECURSE
  "libcgp_sim.a"
)
