file(REMOVE_RECURSE
  "CMakeFiles/cgp_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/cgp_sim.dir/pipeline_sim.cpp.o.d"
  "libcgp_sim.a"
  "libcgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
