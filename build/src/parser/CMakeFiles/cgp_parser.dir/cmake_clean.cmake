file(REMOVE_RECURSE
  "CMakeFiles/cgp_parser.dir/parser.cpp.o"
  "CMakeFiles/cgp_parser.dir/parser.cpp.o.d"
  "libcgp_parser.a"
  "libcgp_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
