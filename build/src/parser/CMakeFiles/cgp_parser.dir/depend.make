# Empty dependencies file for cgp_parser.
# This may be replaced when dependencies are built.
