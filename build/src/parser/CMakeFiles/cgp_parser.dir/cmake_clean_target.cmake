file(REMOVE_RECURSE
  "libcgp_parser.a"
)
