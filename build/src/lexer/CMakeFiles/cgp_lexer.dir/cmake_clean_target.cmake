file(REMOVE_RECURSE
  "libcgp_lexer.a"
)
