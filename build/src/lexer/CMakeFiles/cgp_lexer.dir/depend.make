# Empty dependencies file for cgp_lexer.
# This may be replaced when dependencies are built.
