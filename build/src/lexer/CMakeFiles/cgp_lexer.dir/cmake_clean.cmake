file(REMOVE_RECURSE
  "CMakeFiles/cgp_lexer.dir/lexer.cpp.o"
  "CMakeFiles/cgp_lexer.dir/lexer.cpp.o.d"
  "libcgp_lexer.a"
  "libcgp_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
