
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/compiled_pipeline.cpp" "src/codegen/CMakeFiles/cgp_codegen.dir/compiled_pipeline.cpp.o" "gcc" "src/codegen/CMakeFiles/cgp_codegen.dir/compiled_pipeline.cpp.o.d"
  "/root/repo/src/codegen/emitter.cpp" "src/codegen/CMakeFiles/cgp_codegen.dir/emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/cgp_codegen.dir/emitter.cpp.o.d"
  "/root/repo/src/codegen/interp.cpp" "src/codegen/CMakeFiles/cgp_codegen.dir/interp.cpp.o" "gcc" "src/codegen/CMakeFiles/cgp_codegen.dir/interp.cpp.o.d"
  "/root/repo/src/codegen/packing.cpp" "src/codegen/CMakeFiles/cgp_codegen.dir/packing.cpp.o" "gcc" "src/codegen/CMakeFiles/cgp_codegen.dir/packing.cpp.o.d"
  "/root/repo/src/codegen/serialize.cpp" "src/codegen/CMakeFiles/cgp_codegen.dir/serialize.cpp.o" "gcc" "src/codegen/CMakeFiles/cgp_codegen.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cgp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cgp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/cgp_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/datacutter/CMakeFiles/cgp_datacutter.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/cgp_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/cgp_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cgp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
