# Empty compiler generated dependencies file for cgp_codegen.
# This may be replaced when dependencies are built.
