file(REMOVE_RECURSE
  "libcgp_codegen.a"
)
