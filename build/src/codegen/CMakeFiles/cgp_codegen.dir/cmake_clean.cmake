file(REMOVE_RECURSE
  "CMakeFiles/cgp_codegen.dir/compiled_pipeline.cpp.o"
  "CMakeFiles/cgp_codegen.dir/compiled_pipeline.cpp.o.d"
  "CMakeFiles/cgp_codegen.dir/emitter.cpp.o"
  "CMakeFiles/cgp_codegen.dir/emitter.cpp.o.d"
  "CMakeFiles/cgp_codegen.dir/interp.cpp.o"
  "CMakeFiles/cgp_codegen.dir/interp.cpp.o.d"
  "CMakeFiles/cgp_codegen.dir/packing.cpp.o"
  "CMakeFiles/cgp_codegen.dir/packing.cpp.o.d"
  "CMakeFiles/cgp_codegen.dir/serialize.cpp.o"
  "CMakeFiles/cgp_codegen.dir/serialize.cpp.o.d"
  "libcgp_codegen.a"
  "libcgp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
