# Empty dependencies file for cgp_support.
# This may be replaced when dependencies are built.
