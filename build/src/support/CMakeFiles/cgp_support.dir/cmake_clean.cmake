file(REMOVE_RECURSE
  "CMakeFiles/cgp_support.dir/diagnostics.cpp.o"
  "CMakeFiles/cgp_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/cgp_support.dir/section.cpp.o"
  "CMakeFiles/cgp_support.dir/section.cpp.o.d"
  "CMakeFiles/cgp_support.dir/str.cpp.o"
  "CMakeFiles/cgp_support.dir/str.cpp.o.d"
  "CMakeFiles/cgp_support.dir/symexpr.cpp.o"
  "CMakeFiles/cgp_support.dir/symexpr.cpp.o.d"
  "libcgp_support.a"
  "libcgp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
