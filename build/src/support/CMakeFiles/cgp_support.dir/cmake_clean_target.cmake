file(REMOVE_RECURSE
  "libcgp_support.a"
)
