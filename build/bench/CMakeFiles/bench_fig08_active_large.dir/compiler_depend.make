# Empty compiler generated dependencies file for bench_fig08_active_large.
# This may be replaced when dependencies are built.
