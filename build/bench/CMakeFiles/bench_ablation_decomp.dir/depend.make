# Empty dependencies file for bench_ablation_decomp.
# This may be replaced when dependencies are built.
