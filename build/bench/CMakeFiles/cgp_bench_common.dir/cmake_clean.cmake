file(REMOVE_RECURSE
  "CMakeFiles/cgp_bench_common.dir/figure_common.cpp.o"
  "CMakeFiles/cgp_bench_common.dir/figure_common.cpp.o.d"
  "libcgp_bench_common.a"
  "libcgp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
