file(REMOVE_RECURSE
  "libcgp_bench_common.a"
)
