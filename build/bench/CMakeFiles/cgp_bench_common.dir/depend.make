# Empty dependencies file for cgp_bench_common.
# This may be replaced when dependencies are built.
