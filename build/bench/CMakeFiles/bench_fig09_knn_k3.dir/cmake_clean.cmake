file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_knn_k3.dir/bench_fig09_knn_k3.cpp.o"
  "CMakeFiles/bench_fig09_knn_k3.dir/bench_fig09_knn_k3.cpp.o.d"
  "bench_fig09_knn_k3"
  "bench_fig09_knn_k3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_knn_k3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
