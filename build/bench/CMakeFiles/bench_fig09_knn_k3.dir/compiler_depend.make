# Empty compiler generated dependencies file for bench_fig09_knn_k3.
# This may be replaced when dependencies are built.
