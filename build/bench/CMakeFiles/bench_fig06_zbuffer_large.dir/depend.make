# Empty dependencies file for bench_fig06_zbuffer_large.
# This may be replaced when dependencies are built.
