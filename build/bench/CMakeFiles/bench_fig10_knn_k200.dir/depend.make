# Empty dependencies file for bench_fig10_knn_k200.
# This may be replaced when dependencies are built.
