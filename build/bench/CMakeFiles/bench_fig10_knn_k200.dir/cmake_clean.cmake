file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_knn_k200.dir/bench_fig10_knn_k200.cpp.o"
  "CMakeFiles/bench_fig10_knn_k200.dir/bench_fig10_knn_k200.cpp.o.d"
  "bench_fig10_knn_k200"
  "bench_fig10_knn_k200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_knn_k200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
