# Empty compiler generated dependencies file for bench_fig11_vmscope_small.
# This may be replaced when dependencies are built.
