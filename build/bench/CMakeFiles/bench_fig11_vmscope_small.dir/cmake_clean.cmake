file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vmscope_small.dir/bench_fig11_vmscope_small.cpp.o"
  "CMakeFiles/bench_fig11_vmscope_small.dir/bench_fig11_vmscope_small.cpp.o.d"
  "bench_fig11_vmscope_small"
  "bench_fig11_vmscope_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vmscope_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
