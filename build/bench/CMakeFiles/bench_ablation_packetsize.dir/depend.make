# Empty dependencies file for bench_ablation_packetsize.
# This may be replaced when dependencies are built.
