# Empty compiler generated dependencies file for bench_fig07_active_small.
# This may be replaced when dependencies are built.
