file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_active_small.dir/bench_fig07_active_small.cpp.o"
  "CMakeFiles/bench_fig07_active_small.dir/bench_fig07_active_small.cpp.o.d"
  "bench_fig07_active_small"
  "bench_fig07_active_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_active_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
