file(REMOVE_RECURSE
  "CMakeFiles/isosurface_pipeline.dir/isosurface_pipeline.cpp.o"
  "CMakeFiles/isosurface_pipeline.dir/isosurface_pipeline.cpp.o.d"
  "isosurface_pipeline"
  "isosurface_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isosurface_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
