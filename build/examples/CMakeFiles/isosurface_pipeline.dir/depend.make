# Empty dependencies file for isosurface_pipeline.
# This may be replaced when dependencies are built.
