file(REMOVE_RECURSE
  "CMakeFiles/vmscope_query.dir/vmscope_query.cpp.o"
  "CMakeFiles/vmscope_query.dir/vmscope_query.cpp.o.d"
  "vmscope_query"
  "vmscope_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmscope_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
