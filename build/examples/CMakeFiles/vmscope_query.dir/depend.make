# Empty dependencies file for vmscope_query.
# This may be replaced when dependencies are built.
