// Differential conformance suite for the stream transport (ISSUE: buffer
// pooling + packet batching). Every dialect application is executed three
// ways — the sequential interpreter (the oracle), the generated pipeline
// under the paper's Default placement (forward-everything on the threaded
// runner), and the compiled pipeline under the compiler's Decomp placement —
// across the full transport matrix
//     batch_size in {1, 4, 64}  x  stream_capacity in {1, 16}  x
//     copies in {1, 3},
// and the final bindings are compared against the oracle. With a single
// copy per stage execution is deterministic, so the comparison is exact:
// each value is serialized with write_value and the bytes must match. With
// transparent copies the end-of-run replica merge may reorder float
// accumulation, so values are compared structurally with a tight tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app_configs.h"
#include "codegen/interp.h"
#include "codegen/serialize.h"
#include "datacutter/checkpoint.h"
#include "driver/compiler.h"
#include "parser/parser.h"
#include "sema/sema.h"
#include "support/faultinject.h"

namespace cgp {
namespace {

struct Oracle {
  std::map<std::string, Value> values;
};

Oracle run_sequential(const apps::AppConfig& config, const std::string& cls) {
  DiagnosticEngine diags;
  auto program = Parser::parse(config.source, diags);
  Sema sema(*program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  Interpreter interp(result.registry, config.runtime_constants);
  Env env = interp.run(cls, "main");
  return Oracle{env.flatten()};
}

CompileResult compile_app(const apps::AppConfig& config, int width,
                          int max_replicas = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  options.max_replicas = max_replicas;
  if (max_replicas > 1)
    options.replication_overhead_sec = options.env.links.front().latency_sec;
  CompileResult result = compile_pipeline(config.source, options);
  EXPECT_TRUE(result.ok) << config.name << ": " << result.diagnostics;
  return result;
}

std::vector<unsigned char> value_bytes(const Value& value) {
  dc::Buffer buffer;
  write_value(buffer, value);
  const auto* data = reinterpret_cast<const unsigned char*>(buffer.data());
  return std::vector<unsigned char>(data, data + buffer.size());
}

/// Compares sink bindings against the oracle. With tol == 0 every final is
/// compared and must serialize to identical bytes (single-copy execution is
/// deterministic). With tol > 0 only the app's semantic result keys are
/// compared (transparent copies legitimately diverge on per-copy state such
/// as PRNG seeds, and replica merges may reorder float accumulation).
/// `stage_local` names scalars the decomposition legitimately leaves behind
/// on an upstream stage: mutated there but consumed by no later filter, so
/// ReqComm never ships them and the sink reports the declaration
/// initializer, while the oracle's single env holds the mutated value.
void expect_conformant(const Oracle& oracle, const PipelineRunResult& run,
                       double tol, const std::vector<std::string>& result_keys,
                       const std::vector<std::string>& stage_local,
                       const std::string& what) {
  ASSERT_TRUE(run.completed) << what << ": " << run.error;
  ASSERT_FALSE(run.finals.empty()) << what;
  if (tol == 0.0) {
    for (const auto& [key, value] : run.finals) {
      if (std::find(stage_local.begin(), stage_local.end(), key) !=
          stage_local.end())
        continue;
      auto it = oracle.values.find(key);
      ASSERT_NE(it, oracle.values.end()) << what << ": oracle lacks " << key;
      EXPECT_EQ(value_bytes(value), value_bytes(it->second))
          << what << ": " << key << " = " << value_to_string(value) << " vs "
          << value_to_string(it->second);
    }
    return;
  }
  for (const std::string& key : result_keys) {
    auto run_it = run.finals.find(key);
    ASSERT_NE(run_it, run.finals.end()) << what << ": run lacks " << key;
    auto it = oracle.values.find(key);
    ASSERT_NE(it, oracle.values.end()) << what << ": oracle lacks " << key;
    EXPECT_TRUE(value_equal(run_it->second, it->second, tol))
        << what << ": " << key << " = " << value_to_string(run_it->second)
        << " vs " << value_to_string(it->second);
  }
}

/// Runs one app through the transport matrix under both placements and
/// checks every cell against the sequential oracle.
void run_matrix(const apps::AppConfig& config, const std::string& cls,
                const std::vector<std::string>& result_keys,
                const std::vector<std::string>& stage_local = {}) {
  const Oracle oracle = run_sequential(config, cls);
  ASSERT_FALSE(oracle.values.empty());
  for (int copies : {1, 3}) {
    CompileResult result = compile_app(config, copies);
    if (!result.ok) continue;  // compile_app already recorded the failure
    const EnvironmentSpec env = EnvironmentSpec::paper_cluster(copies);
    const double tol = copies == 1 ? 0.0 : 1e-9;
    struct Path {
      const char* name;
      const Placement* placement;
    };
    const Path paths[] = {
        {"decomp", &result.decomposition.placement},
        {"default", &result.baseline},
    };
    for (const Path& path : paths) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{4},
                                std::size_t{64}}) {
        for (std::size_t capacity : {std::size_t{1}, std::size_t{16}}) {
          dc::RunnerConfig transport;
          transport.stream_capacity = capacity;
          transport.batch_size = batch;
          PipelineRunResult run =
              result.make_runner(*path.placement, env, {}, transport).run();
          const std::string what = config.name + " " + path.name +
                                   " copies=" + std::to_string(copies) +
                                   " batch=" + std::to_string(batch) +
                                   " cap=" + std::to_string(capacity);
          expect_conformant(oracle, run, tol, result_keys, stage_local, what);
          EXPECT_EQ(run.batch_size, static_cast<std::int64_t>(batch)) << what;
        }
      }
    }
  }
}

/// Stateful-recovery matrix (docs/ROBUSTNESS.md): every consuming stage is
/// faulted once under restart-copy with filter-state checkpointing, across
/// checkpoint_interval {1, 16} x batch_size {1, 64}, single-copy so the
/// comparison against the fault-free oracle is byte-exact. Compiled stages
/// carry real state between packets (reduction replicas, carried scalars,
/// the packet cursor), so a recovery that loses or double-applies anything
/// shows up as a byte mismatch.
void run_recovery_matrix(const apps::AppConfig& config, const std::string& cls,
                         const std::vector<std::string>& result_keys,
                         const std::vector<std::string>& stage_local = {}) {
  const Oracle oracle = run_sequential(config, cls);
  ASSERT_FALSE(oracle.values.empty());
  CompileResult result = compile_app(config, 1);
  if (!result.ok) return;
  const EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  dc::FaultPolicy policy;
  policy.action = dc::FaultAction::kRestartCopy;
  policy.max_retries = 4;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  struct Path {
    const char* name;
    const Placement* placement;
  };
  const Path paths[] = {
      {"decomp", &result.decomposition.placement},
      {"default", &result.baseline},
  };
  for (const Path& path : paths) {
    for (std::size_t interval : {std::size_t{1}, std::size_t{16}}) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
        dc::RunnerConfig transport;
        transport.batch_size = batch;
        transport.checkpoint_interval = interval;
        PipelineCompiler compiler =
            result.make_runner(*path.placement, env, {}, transport);
        compiler.set_fault_policy(policy);
        compiler.set_packet_hook(support::make_fault_hook(
            support::parse_fault_plan("stage1:throw@2,stage2:throw@1")));
        PipelineRunResult run = compiler.run();
        const std::string what = config.name + " recovery " + path.name +
                                 " interval=" + std::to_string(interval) +
                                 " batch=" + std::to_string(batch);
        expect_conformant(oracle, run, 0.0, result_keys, stage_local, what);
        // Both consuming stages faulted and recovered from their snapshots;
        // nothing was dropped on the way to the byte-exact result.
        ASSERT_EQ(run.faults.size(), 2u) << what;
        for (const support::FaultRecord& fault : run.faults) {
          EXPECT_EQ(fault.resolution,
                    support::FaultResolution::kRestoredCheckpoint)
              << what << ": " << fault.group;
        }
        std::int64_t dropped = 0;
        for (const support::FilterMetrics& m : run.stage_metrics)
          dropped += m.dropped_packets;
        EXPECT_EQ(dropped, 0) << what;
        if (interval == 1) {
          // Every consumed packet commits a snapshot at this interval.
          EXPECT_GE(run.stage_metrics[2].checkpoints, 1) << what;
        }
      }
    }
  }
}

/// Replica-plan matrix (ROADMAP item 1): compile with a replication budget
/// at width 1 and run whatever per-stage replica plan the decomposition DP
/// emits across the transport matrix, checking finals against the oracle.
/// The DP is free to keep r = 1 at these scaled-down sizes, so a second
/// pass forces the budget onto every classifier-approved stage — the
/// runtime's replicated path (round-robin sources, competitive pops,
/// replica merges) is exercised either way. Replicated execution may
/// reorder float accumulation, so comparisons are structural at 1e-9.
void run_replica_plan_matrix(const apps::AppConfig& config,
                             const std::string& cls,
                             const std::vector<std::string>& result_keys,
                             const std::vector<std::string>& stage_local = {}) {
  const Oracle oracle = run_sequential(config, cls);
  ASSERT_FALSE(oracle.values.empty());
  const int budget = 4;
  CompileResult result = compile_app(config, /*width=*/1, budget);
  if (!result.ok) return;
  const EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  const std::vector<char> flags = result.classification.parallel_flags();

  // The forced plan: every non-sink stage whose filters are all
  // classifier-approved (the filterless source stage counts) runs at the
  // full budget.
  Placement forced = result.decomposition.placement;
  const std::size_t stages = env.units.size();
  forced.replicas.assign(stages, 1);
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    bool parallel = true;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (forced.unit_of_filter[i] == static_cast<int>(s) && !flags[i])
        parallel = false;
    }
    if (parallel) forced.replicas[s] = budget;
  }

  struct Path {
    const char* name;
    const Placement* placement;
  };
  const Path paths[] = {
      {"dp-plan", &result.decomposition.placement},
      {"forced-plan", &forced},
  };
  for (const Path& path : paths) {
    const double tol = path.placement->replicated() ? 1e-9 : 0.0;
    for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      for (std::size_t capacity : {std::size_t{1}, std::size_t{16}}) {
        dc::RunnerConfig transport;
        transport.stream_capacity = capacity;
        transport.batch_size = batch;
        PipelineRunResult run =
            result.make_runner(*path.placement, env, {}, transport).run();
        const std::string what = config.name + " " + path.name + " " +
                                 path.placement->to_string() +
                                 " batch=" + std::to_string(batch) +
                                 " cap=" + std::to_string(capacity);
        expect_conformant(oracle, run, tol, result_keys, stage_local, what);
        // The trace must report the widths the plan asked for.
        for (std::size_t s = 0; s < run.stage_replicas.size(); ++s) {
          EXPECT_EQ(run.stage_replicas[s],
                    path.placement->replicas_of(static_cast<int>(s)))
              << what;
        }
      }
    }
  }
}

/// Kill+resume matrix (the replica-aware exactly-once tentpole): compile
/// with a forced replica budget, enable run-level checkpointing, kill every
/// copy of the first consuming stage at cut marker 2 (refiring fault, retry
/// budget 1, so restarted instances re-die and the whole stage goes down),
/// then resume a fresh runner from the last usable cut on disk and compare
/// the finals against the sequential oracle. Replicated execution may
/// reorder float accumulation, so the comparison is structural at 1e-9
/// when the plan is replicated and byte-exact otherwise.
void run_kill_resume_matrix(const apps::AppConfig& config,
                            const std::string& cls,
                            const std::vector<std::string>& result_keys,
                            const std::vector<std::string>& stage_local = {}) {
  const Oracle oracle = run_sequential(config, cls);
  ASSERT_FALSE(oracle.values.empty());
  const int budget = 4;
  CompileResult result = compile_app(config, /*width=*/1, budget);
  if (!result.ok) return;
  const EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  const std::vector<char> flags = result.classification.parallel_flags();

  Placement forced = result.decomposition.placement;
  const std::size_t stages = env.units.size();
  forced.replicas.assign(stages, 1);
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    bool parallel = true;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (forced.unit_of_filter[i] == static_cast<int>(s) && !flags[i])
        parallel = false;
    }
    if (parallel) forced.replicas[s] = budget;
  }
  const double tol = forced.replicated() ? 1e-9 : 0.0;

  dc::FaultPolicy policy;
  policy.action = dc::FaultAction::kRestartCopy;
  policy.max_retries = 1;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;

  for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
    const std::string path = "cgp_conf_resume_" + config.name + "_" +
                             std::to_string(batch) + ".json";
    std::remove(path.c_str());
    const std::string what = config.name + " kill-resume " +
                             forced.to_string() +
                             " batch=" + std::to_string(batch);
    // Kill attempts: cut 0 commits well before marker 2 reaches the
    // consuming stage, so a usable checkpoint lands on disk before the
    // stage dies. A run that somehow leaves no cut (it raced to EOS) is
    // simply retried — the storm is about what survives on disk.
    dc::RunnerConfig transport;
    transport.batch_size = batch;
    transport.stream_capacity = 16;
    transport.checkpoint_interval = 2;
    transport.checkpoint_path = path;
    for (int attempt = 0; attempt < 3 && !std::ifstream(path).good();
         ++attempt) {
      PipelineCompiler killer = result.make_runner(forced, env, {}, transport);
      killer.set_fault_policy(policy);
      killer.set_marker_hook(support::make_marker_fault_hook(
          support::parse_fault_plan("stage1:throw@mark2!")));
      (void)killer.run();
    }
    ASSERT_TRUE(std::ifstream(path).good()) << what << ": no cut committed";
    // Resume from the surviving cut, fault-free; the delivered result must
    // match the uninterrupted oracle.
    const dc::RunCheckpoint cut = dc::load_checkpoint(path);
    EXPECT_GT(cut.source_copies.size(), 0u) << what;
    dc::RunnerConfig resumed = transport;
    resumed.resume = &cut;
    PipelineRunResult run = result.make_runner(forced, env, {}, resumed).run();
    expect_conformant(oracle, run, tol, result_keys, stage_local, what);
    std::remove(path.c_str());
  }
}

/// Cross-backend matrix (ISSUE: multi-process transport): the same compiled
/// pipeline under the Decomp placement on every execution substrate —
/// in-process queues, forked workers over shared-memory rings, and forked
/// workers over loopback TCP — across batch x capacity x replicas, each
/// cell checked against the sequential oracle. Single-copy cells are
/// byte-exact on every backend: crossing a process boundary must not
/// perturb one bit of the delivered result. Multi-group cells on the
/// process backends must also report wire telemetry (cgpipe-trace-v7) for
/// the backend they actually ran on.
/// CI splits the backend matrix by sanitizer lane: setting
/// CGP_BACKEND_MATRIX="thread,proc" restricts which backends the
/// *Backends tests cover (the TSan lane skips the tcp loopback cells,
/// which run in the plain Release lane). Unset or empty covers all.
bool backend_enabled(dc::TransportBackend backend) {
  const char* filter = std::getenv("CGP_BACKEND_MATRIX");
  if (!filter || !*filter) return true;
  const std::string list = std::string(",") + filter + ",";
  const std::string needle =
      std::string(",") + dc::backend_name(backend) + ",";
  return list.find(needle) != std::string::npos;
}

void run_backend_matrix(const apps::AppConfig& config, const std::string& cls,
                        const std::vector<std::string>& result_keys,
                        const std::vector<std::string>& stage_local = {}) {
  const Oracle oracle = run_sequential(config, cls);
  ASSERT_FALSE(oracle.values.empty());
  for (int copies : {1, 3}) {
    CompileResult result = compile_app(config, copies);
    if (!result.ok) continue;  // compile_app already recorded the failure
    const EnvironmentSpec env = EnvironmentSpec::paper_cluster(copies);
    const double tol = copies == 1 ? 0.0 : 1e-9;
    for (dc::TransportBackend backend :
         {dc::TransportBackend::kThread, dc::TransportBackend::kProc,
          dc::TransportBackend::kTcp}) {
      if (!backend_enabled(backend)) continue;
      for (std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
        for (std::size_t capacity : {std::size_t{1}, std::size_t{16}}) {
          dc::RunnerConfig transport;
          transport.backend = backend;
          transport.stream_capacity = capacity;
          transport.batch_size = batch;
          PipelineRunResult run =
              result.make_runner(result.decomposition.placement, env, {},
                                 transport)
                  .run();
          const std::string what =
              config.name + " backend=" + dc::backend_name(backend) +
              " copies=" + std::to_string(copies) +
              " batch=" + std::to_string(batch) +
              " cap=" + std::to_string(capacity);
          expect_conformant(oracle, run, tol, result_keys, stage_local, what);
          if (backend != dc::TransportBackend::kThread) {
            for (const support::LinkMetrics& link : run.link_metrics) {
              EXPECT_EQ(link.transport, dc::backend_name(backend)) << what;
              EXPECT_GT(link.frames, 0) << what;
              EXPECT_GT(link.wire_bytes, 0) << what;
            }
          }
        }
      }
    }
  }
}

TEST(Conformance, Tiny) {
  run_matrix(apps::tiny_config(256, 8), "Tiny", {"result"});
}

TEST(Conformance, IsosurfaceZBuffer) {
  run_matrix(apps::isosurface_zbuffer_config(false), "IsoZBuffer",
             {"checksum", "lit"});
}

TEST(Conformance, IsosurfaceActivePixels) {
  run_matrix(apps::isosurface_active_pixels_config(false), "IsoActivePixels",
             {"checksum", "lit"});
}

TEST(Conformance, Knn) {
  // `seed` is the data host's point-synthesis PRNG cursor: mutated in
  // pre-loop code, consumed by no downstream filter, so the decomposed
  // sink correctly reports its initializer rather than the mutated value.
  run_matrix(apps::knn_config(3), "Knn", {"kth", "dsum"}, {"seed"});
}

TEST(Conformance, Vmscope) {
  run_matrix(apps::vmscope_config(false), "VMScope", {"total", "filled"});
}

TEST(Conformance, TinyRecovery) {
  run_recovery_matrix(apps::tiny_config(256, 8), "Tiny", {"result"});
}

TEST(Conformance, IsosurfaceZBufferRecovery) {
  run_recovery_matrix(apps::isosurface_zbuffer_config(false), "IsoZBuffer",
                      {"checksum", "lit"});
}

TEST(Conformance, IsosurfaceActivePixelsRecovery) {
  run_recovery_matrix(apps::isosurface_active_pixels_config(false),
                      "IsoActivePixels", {"checksum", "lit"});
}

TEST(Conformance, KnnRecovery) {
  run_recovery_matrix(apps::knn_config(3), "Knn", {"kth", "dsum"}, {"seed"});
}

TEST(Conformance, VmscopeRecovery) {
  run_recovery_matrix(apps::vmscope_config(false), "VMScope",
                      {"total", "filled"});
}

TEST(Conformance, TinyReplicaPlan) {
  run_replica_plan_matrix(apps::tiny_config(256, 8), "Tiny", {"result"});
}

TEST(Conformance, IsosurfaceZBufferReplicaPlan) {
  run_replica_plan_matrix(apps::isosurface_zbuffer_config(false), "IsoZBuffer",
                          {"checksum", "lit"});
}

TEST(Conformance, IsosurfaceActivePixelsReplicaPlan) {
  run_replica_plan_matrix(apps::isosurface_active_pixels_config(false),
                          "IsoActivePixels", {"checksum", "lit"});
}

TEST(Conformance, KnnReplicaPlan) {
  run_replica_plan_matrix(apps::knn_config(3), "Knn", {"kth", "dsum"},
                          {"seed"});
}

TEST(Conformance, VmscopeReplicaPlan) {
  run_replica_plan_matrix(apps::vmscope_config(false), "VMScope",
                          {"total", "filled"});
}

TEST(Conformance, TinyBackends) {
  run_backend_matrix(apps::tiny_config(256, 8), "Tiny", {"result"});
}

TEST(Conformance, IsosurfaceZBufferBackends) {
  run_backend_matrix(apps::isosurface_zbuffer_config(false), "IsoZBuffer",
                     {"checksum", "lit"});
}

TEST(Conformance, IsosurfaceActivePixelsBackends) {
  run_backend_matrix(apps::isosurface_active_pixels_config(false),
                     "IsoActivePixels", {"checksum", "lit"});
}

TEST(Conformance, KnnBackends) {
  run_backend_matrix(apps::knn_config(3), "Knn", {"kth", "dsum"}, {"seed"});
}

TEST(Conformance, VmscopeBackends) {
  run_backend_matrix(apps::vmscope_config(false), "VMScope",
                     {"total", "filled"});
}

TEST(Conformance, TinyKillResume) {
  run_kill_resume_matrix(apps::tiny_config(256, 8), "Tiny", {"result"});
}

TEST(Conformance, IsosurfaceZBufferKillResume) {
  run_kill_resume_matrix(apps::isosurface_zbuffer_config(false), "IsoZBuffer",
                         {"checksum", "lit"});
}

TEST(Conformance, IsosurfaceActivePixelsKillResume) {
  run_kill_resume_matrix(apps::isosurface_active_pixels_config(false),
                         "IsoActivePixels", {"checksum", "lit"});
}

TEST(Conformance, KnnKillResume) {
  run_kill_resume_matrix(apps::knn_config(3), "Knn", {"kth", "dsum"},
                         {"seed"});
}

TEST(Conformance, VmscopeKillResume) {
  run_kill_resume_matrix(apps::vmscope_config(false), "VMScope",
                         {"total", "filled"});
}

}  // namespace
}  // namespace cgp
