// Fault-tolerant execution tests (docs/ROBUSTNESS.md): supervised copies
// under the three fault policies, bounded retries and copy death, graceful
// drain when a whole stage dies, the no-progress watchdog, and the
// deterministic fault-injection harness. The FaultStress_* cases are the
// CI stress job's target (Release + TSan, repeated).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/runner.h"
#include "support/faultinject.h"

namespace cgp::dc {
namespace {

// Tight backoff so retry-heavy tests stay fast.
FaultPolicy policy_for(FaultAction action, int max_retries = 3) {
  FaultPolicy policy;
  policy.action = action;
  policy.max_retries = max_retries;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  return policy;
}

constexpr std::int64_t kMagic = 0x5a5a5a5a5a5a5a5a;

class CountingSource : public Filter {
 public:
  explicit CountingSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      b.write<std::int64_t>(i ^ kMagic);  // checksum for corruption tests
      ctx.emit(std::move(b));
    }
  }

 private:
  int n_;
};

class AddOne : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v + 1);
      out.write<std::int64_t>((v + 1) ^ kMagic);
      ctx.emit(std::move(out));
    }
  }
};

struct SinkState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;
  std::int64_t total = 0;
};

class CollectingSink : public Filter {
 public:
  explicit CollectingSink(std::shared_ptr<SinkState> state, bool validate)
      : state_(std::move(state)), validate_(validate) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      const std::int64_t check = b->read<std::int64_t>();
      if (validate_ && (v ^ kMagic) != check)
        throw std::runtime_error("checksum mismatch");
      std::lock_guard lock(state_->mutex);
      state_->values.insert(v);
      state_->total += v;
    }
  }

 private:
  std::shared_ptr<SinkState> state_;
  bool validate_;
};

FilterGroup source_group(const char* name, int n, int copies, int stage) {
  return {name, [n] { return std::make_unique<CountingSource>(n); }, copies,
          stage};
}
FilterGroup addone_group(const char* name, int copies, int stage) {
  return {name, [] { return std::make_unique<AddOne>(); }, copies, stage};
}
FilterGroup sink_group(const char* name, std::shared_ptr<SinkState> state,
                       int stage, bool validate = false) {
  return {name,
          [state, validate] {
            return std::make_unique<CollectingSink>(state, validate);
          },
          1, stage};
}

std::multiset<std::int64_t> expected_values(int n, std::int64_t offset) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.insert(i + offset);
  return out;
}

// ---------------------------------------------------------------------------
// Policy plumbing
// ---------------------------------------------------------------------------

TEST(FaultPolicy, ActionNamesRoundTrip) {
  for (FaultAction action : {FaultAction::kFailFast, FaultAction::kRestartCopy,
                             FaultAction::kDropPacket}) {
    const auto parsed = FaultPolicy::parse_action(
        FaultPolicy::action_name(action));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, action);
  }
  EXPECT_FALSE(FaultPolicy::parse_action("retry-forever").has_value());
}

// ---------------------------------------------------------------------------
// restart-copy
// ---------------------------------------------------------------------------

TEST(RestartCopy, ReplaysInflightPacketAndCompletes) {
  // Acceptance scenario: a 4-stage pipeline with a throw-on-Nth fault in a
  // middle stage completes with the exact sink output — the in-flight
  // packet is replayed, nothing is lost or duplicated.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid1", 1, 1));
  groups.push_back(addone_group("mid2", 1, 2));
  groups.push_back(sink_group("sink", state, 3));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid1:throw@5")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_TRUE(outcome.stats.completed);
  EXPECT_EQ(state->values, expected_values(32, 2));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].group, "mid1");
  EXPECT_EQ(outcome.stats.faults[0].packet_index, 5);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  EXPECT_EQ(outcome.stats.total_retries(), 1);
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 0);
  EXPECT_EQ(outcome.stats.fault_policy, "restart-copy");
  // The trace carries the fault surface.
  const support::PipelineTrace trace = outcome.stats.trace();
  ASSERT_EQ(trace.faults.size(), 1u);
  EXPECT_TRUE(trace.completed);
  EXPECT_EQ(trace.fault_policy, "restart-copy");
}

TEST(RestartCopy, SourceRestartDeliversExactlyOnce) {
  // A deterministic source that faults mid-emission re-computes on restart;
  // skip_emits suppresses what was already delivered, so downstream sees
  // every packet exactly once.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 24, 1, 0));
  groups.push_back(sink_group("sink", state, 1));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("src:throw@3")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(24, 0));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  EXPECT_EQ(outcome.stats.group_metrics[0].retries, 1);
}

TEST(RestartCopy, RepeatedTransientFaultsAllRecover) {
  // A refiring positional fault hits every restarted instance at its own
  // packet 2; the replay mechanism absorbs each hit without losing data.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 30, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@2!")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(30, 1));
  EXPECT_GE(outcome.stats.total_retries(), 2);
}

TEST(RestartCopy, PoisonPacketExhaustsRetriesAndKillsCopy) {
  // The filter itself rejects one specific payload, so the replayed packet
  // fails on every attempt: bounded consecutive retries must declare the
  // copy dead and surface the loss as the run error.
  struct Poisoned : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        const std::int64_t v = b->read<std::int64_t>();
        if (v == 13) throw std::runtime_error("poison payload");
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 20, 1, 0));
  groups.push_back(
      {"poisoned", [] { return std::make_unique<Poisoned>(); }, 1, 1});
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy, 2));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("all 1 copies dead"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 3u);
  EXPECT_EQ(outcome.stats.faults.back().resolution,
            support::FaultResolution::kCopyDead);
  // The source still ran to completion: the dead stage drained its input.
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 20);
}

// ---------------------------------------------------------------------------
// drop-packet
// ---------------------------------------------------------------------------

TEST(DropPacket, SkipsPoisonedPacketAndCompletes) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 40, 1, 0));
  groups.push_back(addone_group("mid1", 1, 1));
  groups.push_back(addone_group("mid2", 1, 2));
  groups.push_back(sink_group("sink", state, 3));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kDropPacket));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid2:throw@7")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // Single-copy stages are FIFO: mid2's packet 7 carried value 8, so the
  // sink is missing exactly 9.
  std::multiset<std::int64_t> expected = expected_values(40, 2);
  expected.erase(expected.find(9));
  EXPECT_EQ(state->values, expected);
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 1);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kDroppedPacket);
  EXPECT_EQ(outcome.stats.group_metrics[2].dropped_packets, 1);
}

TEST(DropPacket, PersistentFaultKillsStageAndDrainsUpstream) {
  // Every attempt of the only middle copy dies on its first packet: after
  // max_retries fruitless restarts the stage is declared dead. The run
  // fails, but gracefully — the source completes into the drained stream
  // and the sink sees a clean end-of-stream instead of hanging.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 500, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kDropPacket, 2));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@0!")));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("all 1 copies dead"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 3u);
  EXPECT_EQ(outcome.stats.faults.back().resolution,
            support::FaultResolution::kCopyDead);
  // Upstream finished (drain unblocked it) and the drained buffers are
  // accounted on the link.
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 500);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 2u);
  EXPECT_GE(outcome.stats.link_metrics[0].dropped_buffers, 490);
  // Downstream saw end-of-stream, not a hang.
  EXPECT_EQ(outcome.stats.group_metrics[2].packets_in, 0);
}

TEST(DropPacket, CorruptionCaughtByValidatingSinkIsDropped) {
  // Injected corruption + a checksum-validating sink: the bad packet is
  // detected, thrown away under drop-packet, and the run completes.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 20, 1, 0));
  groups.push_back(sink_group("sink", state, 1, /*validate=*/true));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kDropPacket));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("sink:corrupt@2")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  std::multiset<std::int64_t> expected = expected_values(20, 0);
  expected.erase(expected.find(2));
  EXPECT_EQ(state->values, expected);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].what, "checksum mismatch");
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 1);
}

// ---------------------------------------------------------------------------
// fail-fast (the default) keeps its historical shape — but with stats
// ---------------------------------------------------------------------------

TEST(FailFast, RunSupervisedKeepsPartialStatsAndError) {
  struct Exploder : Filter {
    void process(FilterContext& ctx) override {
      ctx.read();
      throw std::runtime_error("boom");
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 1000, 1, 0));
  groups.push_back(
      {"exploder", [] { return std::make_unique<Exploder>(); }, 1, 1});
  PipelineRunner runner(std::move(groups), 2);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_FALSE(outcome.ok());
  EXPECT_THROW(std::rethrow_exception(outcome.error), std::runtime_error);
  // The stats survived the failure: partial metrics, the fault record, and
  // the error text all came back instead of being thrown away.
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_EQ(outcome.stats.error, "boom");
  EXPECT_EQ(outcome.stats.fault_policy, "fail-fast");
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kFatal);
  ASSERT_EQ(outcome.stats.group_metrics.size(), 2u);
  EXPECT_GT(outcome.stats.group_metrics[0].packets_out, 0);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 1u);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, FiresOnStalledStage) {
  // A filter that stops moving data (long sleep, not a blocked stream
  // wait) must trip the no-progress timeout; the watchdog tears the run
  // down and records the stall.
  struct Staller : Filter {
    void process(FilterContext& ctx) override {
      int seen = 0;
      while (auto b = ctx.read()) {
        if (++seen == 2)
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 50, 1, 0));
  groups.push_back(
      {"staller", [] { return std::make_unique<Staller>(); }, 1, 1});
  FaultPolicy policy = policy_for(FaultAction::kRestartCopy);
  policy.stage_timeout_seconds = 0.06;
  PipelineRunner runner(std::move(groups), 4, policy);
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("watchdog"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kWatchdog);
  EXPECT_EQ(outcome.stats.faults[0].group, "staller");
}

TEST(Watchdog, QuietOnHealthyPipelineWithBlockedStages) {
  // A slow source keeps the sink parked in a blocking read most of the
  // time; blocked waits are exempt, and the source itself makes progress
  // well inside the timeout — no false positive.
  struct SlowSource : Filter {
    void process(FilterContext& ctx) override {
      for (int i = 0; i < 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Buffer b;
        b.write<std::int64_t>(i);
        b.write<std::int64_t>(i ^ kMagic);
        ctx.emit(std::move(b));
      }
    }
  };
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"slow-src", [] { return std::make_unique<SlowSource>(); }, 1, 0});
  groups.push_back(sink_group("sink", state, 1));
  FaultPolicy policy;  // fail-fast; only the watchdog is armed
  policy.stage_timeout_seconds = 0.5;
  PipelineRunner runner(std::move(groups), 4, policy);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_TRUE(outcome.stats.faults.empty());
  EXPECT_EQ(state->values.size(), 10u);
}

// ---------------------------------------------------------------------------
// Fault plan parsing and determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryShape) {
  const support::FaultPlan plan = support::parse_fault_plan(
      "stage1:throw@5,decomp#1:sleep@3=0.2,link:drop@~0.05,"
      "mid:corrupt@2+4,src:throw@0!",
      7);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.specs[0].group, "stage1");
  EXPECT_EQ(plan.specs[0].kind, support::FaultKind::kThrow);
  EXPECT_EQ(plan.specs[0].nth_packet, 5);
  EXPECT_EQ(plan.specs[0].copy, -1);
  EXPECT_FALSE(plan.specs[0].refire);
  EXPECT_EQ(plan.specs[1].group, "decomp");
  EXPECT_EQ(plan.specs[1].copy, 1);
  EXPECT_EQ(plan.specs[1].kind, support::FaultKind::kSleep);
  EXPECT_DOUBLE_EQ(plan.specs[1].sleep_seconds, 0.2);
  EXPECT_EQ(plan.specs[2].kind, support::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.specs[2].probability, 0.05);
  EXPECT_EQ(plan.specs[2].nth_packet, -1);
  EXPECT_EQ(plan.specs[3].repeat_every, 4);
  EXPECT_TRUE(plan.specs[4].refire);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(support::parse_fault_plan("nocolon"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:zap@5"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@x"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@~2"),
               std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@5=0.2"),
               std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan(":throw@5"), std::invalid_argument);
}

TEST(FaultPlan, DeterministicTriggersRespectAttemptGating) {
  const support::FaultPlan one_shot = support::parse_fault_plan("g:throw@4");
  EXPECT_NE(one_shot.match("g", 0, 0, 4), nullptr);
  EXPECT_EQ(one_shot.match("g", 0, 1, 4), nullptr);  // transient: cleared
  EXPECT_EQ(one_shot.match("g", 0, 0, 3), nullptr);
  EXPECT_EQ(one_shot.match("other", 0, 0, 4), nullptr);
  const support::FaultPlan refire = support::parse_fault_plan("g:throw@4!");
  EXPECT_NE(refire.match("g", 0, 3, 4), nullptr);  // persistent
  const support::FaultPlan strided = support::parse_fault_plan("g:throw@2+3");
  EXPECT_NE(strided.match("g", 0, 0, 2), nullptr);
  EXPECT_NE(strided.match("g", 0, 0, 5), nullptr);
  EXPECT_EQ(strided.match("g", 0, 0, 4), nullptr);
  const support::FaultPlan copy1 = support::parse_fault_plan("g#1:throw@0");
  EXPECT_EQ(copy1.match("g", 0, 0, 0), nullptr);
  EXPECT_NE(copy1.match("g", 1, 0, 0), nullptr);
}

TEST(FaultPlan, ProbabilisticTriggersAreSeededAndAttemptAware) {
  const support::FaultPlan a = support::parse_fault_plan("g:throw@~0.2", 1);
  const support::FaultPlan b = support::parse_fault_plan("g:throw@~0.2", 2);
  int fires_a = 0;
  int fires_b = 0;
  int agree = 0;
  for (std::int64_t p = 0; p < 500; ++p) {
    const bool fa = a.match("g", 0, 0, p) != nullptr;
    const bool fb = b.match("g", 0, 0, p) != nullptr;
    fires_a += fa ? 1 : 0;
    fires_b += fb ? 1 : 0;
    agree += fa == fb ? 1 : 0;
    // Same seed, same coordinates: always the same answer.
    EXPECT_EQ(fa, a.match("g", 0, 0, p) != nullptr);
  }
  EXPECT_GT(fires_a, 50);  // ~100 expected
  EXPECT_LT(fires_a, 200);
  EXPECT_LT(agree, 500);  // different seeds pick different packets
  // A retry re-rolls: at least one faulting packet passes on attempt 1.
  bool some_recover = false;
  for (std::int64_t p = 0; p < 500; ++p) {
    if (a.match("g", 0, 0, p) != nullptr && a.match("g", 0, 1, p) == nullptr)
      some_recover = true;
  }
  EXPECT_TRUE(some_recover);
}

// ---------------------------------------------------------------------------
// Injection shims
// ---------------------------------------------------------------------------

TEST(FlakyLink, DropsPacketsDeterministically) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 30, 1, 0));
  groups.push_back({"link",
                    support::make_flaky_link(
                        support::parse_fault_plan("link:drop@4"), "link"),
                    1, 1});
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8);
  RunStats stats = runner.run();
  std::multiset<std::int64_t> expected = expected_values(30, 0);
  expected.erase(expected.find(4));
  EXPECT_EQ(state->values, expected);
  EXPECT_EQ(stats.group_metrics[1].packets_in, 30);
  EXPECT_EQ(stats.group_metrics[1].packets_out, 29);
}

TEST(FaultInjectingFilter, WrapsOneGroupOnly) {
  // The wrapper injects faults for its group without a runner-wide hook;
  // under drop-packet the poisoned packet disappears and the run finishes.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 16, 1, 0));
  groups.push_back({"mid",
                    support::wrap_with_faults(
                        [] { return std::make_unique<AddOne>(); },
                        support::parse_fault_plan("mid:throw@3!"), "mid"),
                    1, 1});
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kDropPacket, 5));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values.size(),
            16u - static_cast<std::size_t>(
                      outcome.stats.total_dropped_packets()));
  EXPECT_GE(outcome.stats.total_dropped_packets(), 1);
}

TEST(FireFault, CorruptFlipsOneByteInPlace) {
  Buffer b;
  b.write<std::int64_t>(42);
  Buffer original = b;
  support::FaultSpec spec;
  spec.kind = support::FaultKind::kCorrupt;
  support::fire_fault(spec, &b);
  ASSERT_EQ(b.size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b.peek_at<unsigned char>(i) != original.peek_at<unsigned char>(i))
      ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  // Corrupting is idempotent in shape: firing again flips it back.
  support::fire_fault(spec, &b);
  EXPECT_EQ(b.peek_at<std::int64_t>(0), 42);
}

// ---------------------------------------------------------------------------
// Stress (the CI fault-injection job runs these repeatedly under TSan)
// ---------------------------------------------------------------------------

TEST(FaultStress, ProbabilisticFaultsRecoverExactlyOnceUnderRestartCopy) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 200, 2, 0));
    groups.push_back(addone_group("mid1", 2, 1));
    groups.push_back(addone_group("mid2", 2, 2));
    groups.push_back(sink_group("sink", state, 3));
    PipelineRunner runner(
        std::move(groups), 8,
        policy_for(FaultAction::kRestartCopy, /*max_retries=*/6));
    runner.set_packet_hook(support::make_fault_hook(support::parse_fault_plan(
        "src:throw@~0.03,mid1:throw@~0.06,mid2:throw@~0.06", seed)));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.stats.error;
    // Exactly-once delivery survives restarts across every stage.
    EXPECT_EQ(state->values, expected_values(200, 2)) << "seed " << seed;
  }
}

TEST(FaultStress, DropPacketConservesAccounting) {
  for (std::uint64_t seed : {3u, 11u}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 200, 2, 0));
    groups.push_back(addone_group("mid", 2, 1));
    groups.push_back(sink_group("sink", state, 2));
    PipelineRunner runner(
        std::move(groups), 8,
        policy_for(FaultAction::kDropPacket, /*max_retries=*/10));
    runner.set_packet_hook(support::make_fault_hook(
        support::parse_fault_plan("mid:throw@~0.08", seed)));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.stats.error;
    // Every packet is either delivered or accounted as dropped.
    EXPECT_EQ(static_cast<std::int64_t>(state->values.size()),
              200 - outcome.stats.total_dropped_packets())
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Batched transport under faults (batch_size > 1): producer-side batches may
// be partially filled when an attempt dies, and consumer-side batches may be
// partially read. Exactly-once replay and drop accounting must both survive.
// ---------------------------------------------------------------------------

RunnerConfig batched_config(std::size_t batch, std::size_t capacity = 8) {
  RunnerConfig config;
  config.stream_capacity = capacity;
  config.batch_size = batch;
  return config;
}

TEST(BatchedFaults, RestartCopyReplaysExactlyOnceWithBatches) {
  for (std::size_t batch : {std::size_t{4}, std::size_t{64}}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 1, 0));
    groups.push_back(addone_group("mid1", 1, 1));
    groups.push_back(addone_group("mid2", 1, 2));
    groups.push_back(sink_group("sink", state, 3));
    PipelineRunner runner(std::move(groups), batched_config(batch),
                          policy_for(FaultAction::kRestartCopy));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("mid1:throw@5")));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "batch " << batch << ": "
                              << outcome.stats.error;
    // The failed attempt's partially-filled output batch is flushed before
    // the delivered count is read, so replay suppression stays exact even
    // when the batch never reached batch_size.
    EXPECT_EQ(state->values, expected_values(32, 2)) << "batch " << batch;
    EXPECT_EQ(outcome.stats.total_retries(), 1) << "batch " << batch;
    EXPECT_EQ(outcome.stats.total_dropped_packets(), 0) << "batch " << batch;
    EXPECT_EQ(outcome.stats.batch_size, static_cast<std::int64_t>(batch));
  }
}

TEST(BatchedFaults, SourceRestartFlushesPartialBatchExactlyOnce) {
  // The source faults while its second batch is still open (24 packets,
  // batch 16): what was already coalesced must count as delivered exactly
  // when it landed on the stream, so the replay skips the right prefix.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 24, 1, 0));
  groups.push_back(sink_group("sink", state, 1));
  PipelineRunner runner(std::move(groups), batched_config(16),
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("src:throw@19")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(24, 0));
  EXPECT_EQ(outcome.stats.total_retries(), 1);
}

TEST(BatchedFaults, DropPacketDropsExactlyTheFaultedPacket) {
  for (std::size_t batch : {std::size_t{4}, std::size_t{16}}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 40, 1, 0));
    groups.push_back(addone_group("mid", 1, 1));
    groups.push_back(sink_group("sink", state, 2));
    PipelineRunner runner(std::move(groups), batched_config(batch),
                          policy_for(FaultAction::kDropPacket));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("mid:throw@7")));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "batch " << batch << ": "
                              << outcome.stats.error;
    EXPECT_EQ(outcome.stats.total_dropped_packets(), 1) << "batch " << batch;
    EXPECT_EQ(static_cast<std::int64_t>(state->values.size()),
              40 - outcome.stats.total_dropped_packets())
        << "batch " << batch;
  }
}

TEST(BatchedFaults, DeadStageAccountsUnreadBatchedBuffersAsDropped) {
  // A persistently-failing middle copy dies holding popped-but-unread
  // buffers from its last input batch. Those must surface in the dropped
  // accounting rather than vanish: every buffer the source pushed is either
  // dropped by the dying stage (read-then-faulted or unread at death) or
  // discarded by the post-mortem drain.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 200, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), batched_config(8),
                        policy_for(FaultAction::kDropPacket, 2));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@0!")));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 200);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 2u);
  const support::LinkMetrics& in_link = outcome.stats.link_metrics[0];
  EXPECT_EQ(in_link.buffers, 200);
  EXPECT_EQ(outcome.stats.group_metrics[1].dropped_packets +
                in_link.dropped_buffers,
            200);
  // Downstream saw a clean end-of-stream, not a hang.
  EXPECT_EQ(outcome.stats.group_metrics[2].packets_in, 0);
}

TEST(BatchedFaults, StressExactlyOnceAcrossSeedsAndBatchSizes) {
  for (std::uint64_t seed : {1u, 9u}) {
    for (std::size_t batch : {std::size_t{4}, std::size_t{64}}) {
      auto state = std::make_shared<SinkState>();
      std::vector<FilterGroup> groups;
      groups.push_back(source_group("src", 200, 2, 0));
      groups.push_back(addone_group("mid1", 2, 1));
      groups.push_back(addone_group("mid2", 2, 2));
      groups.push_back(sink_group("sink", state, 3));
      PipelineRunner runner(std::move(groups), batched_config(batch),
                            policy_for(FaultAction::kRestartCopy, 6));
      runner.set_packet_hook(
          support::make_fault_hook(support::parse_fault_plan(
              "src:throw@~0.03,mid1:throw@~0.06,mid2:throw@~0.06", seed)));
      RunOutcome outcome = runner.run_supervised();
      ASSERT_TRUE(outcome.ok()) << "seed " << seed << " batch " << batch
                                << ": " << outcome.stats.error;
      EXPECT_EQ(state->values, expected_values(200, 2))
          << "seed " << seed << " batch " << batch;
    }
  }
}

TEST(FaultStress, SleepFaultsOnlyDelayTheRun) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 60, 2, 0));
  groups.push_back(addone_group("mid", 2, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8);
  runner.set_packet_hook(support::make_fault_hook(
      support::parse_fault_plan("mid:sleep@~0.1=0.002", 5)));
  RunStats stats = runner.run();
  EXPECT_EQ(state->values, expected_values(60, 1));
  EXPECT_TRUE(stats.faults.empty());  // sleeps are not failures
}

}  // namespace
}  // namespace cgp::dc
