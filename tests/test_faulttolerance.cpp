// Fault-tolerant execution tests (docs/ROBUSTNESS.md): supervised copies
// under the three fault policies, bounded retries and copy death, graceful
// drain when a whole stage dies, the no-progress watchdog, the
// deterministic fault-injection harness, and exactly-once checkpointed
// recovery (filter-state snapshots, run-level consistent cuts, resume).
// The FaultStress_* and CheckpointStress_* cases are the CI stress jobs'
// targets (Release + TSan, repeated).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/checkpoint.h"
#include "datacutter/runner.h"
#include "support/faultinject.h"

namespace cgp::dc {
namespace {

// Tight backoff so retry-heavy tests stay fast.
FaultPolicy policy_for(FaultAction action, int max_retries = 3) {
  FaultPolicy policy;
  policy.action = action;
  policy.max_retries = max_retries;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  return policy;
}

constexpr std::int64_t kMagic = 0x5a5a5a5a5a5a5a5a;

class CountingSource : public Filter {
 public:
  explicit CountingSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      b.write<std::int64_t>(i ^ kMagic);  // checksum for corruption tests
      ctx.emit(std::move(b));
    }
  }

 private:
  int n_;
};

class AddOne : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v + 1);
      out.write<std::int64_t>((v + 1) ^ kMagic);
      ctx.emit(std::move(out));
    }
  }
  // Stateless: an empty snapshot keeps checkpointed recovery exactly-once
  // across this stage (re-emissions after a restart are deduplicated).
  bool snapshot_state(Buffer&) override { return true; }
};

struct SinkState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;
  std::int64_t total = 0;
};

class CollectingSink : public Filter {
 public:
  explicit CollectingSink(std::shared_ptr<SinkState> state, bool validate)
      : state_(std::move(state)), validate_(validate) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      const std::int64_t check = b->read<std::int64_t>();
      if (validate_ && (v ^ kMagic) != check)
        throw std::runtime_error("checksum mismatch");
      std::lock_guard lock(state_->mutex);
      state_->values.insert(v);
      state_->total += v;
    }
  }

 private:
  std::shared_ptr<SinkState> state_;
  bool validate_;
};

FilterGroup source_group(const char* name, int n, int copies, int stage) {
  return {name, [n] { return std::make_unique<CountingSource>(n); }, copies,
          stage};
}
FilterGroup addone_group(const char* name, int copies, int stage) {
  return {name, [] { return std::make_unique<AddOne>(); }, copies, stage};
}
FilterGroup sink_group(const char* name, std::shared_ptr<SinkState> state,
                       int stage, bool validate = false, int copies = 1) {
  return {name,
          [state, validate] {
            return std::make_unique<CollectingSink>(state, validate);
          },
          copies, stage};
}

std::multiset<std::int64_t> expected_values(int n, std::int64_t offset) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.insert(i + offset);
  return out;
}

struct TotalState {
  std::mutex mutex;
  std::int64_t total = 0;
  std::int64_t count = 0;
};

// A genuinely stateful sink: the running sum lives inside the filter and
// only reaches the shared state at finalize, so a restart that loses the
// accumulator produces a visibly wrong total. snapshot_state/restore_state
// make the accumulator survive checkpointed restarts; `snapshottable`
// false models a legacy filter (forces the in-flight-replay fallback).
// `poison` is a value the filter rejects on sight — a fault that refires
// on every replay, unlike hook-injected faults.
class SummingSink : public Filter {
 public:
  SummingSink(std::shared_ptr<TotalState> state, std::int64_t poison = -1,
              bool snapshottable = true)
      : state_(std::move(state)),
        poison_(poison),
        snapshottable_(snapshottable) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      b->read<std::int64_t>();
      if (v == poison_) throw std::runtime_error("poison value");
      sum_ += v;
      count_ += 1;
    }
  }
  void finalize(FilterContext&) override {
    std::lock_guard lock(state_->mutex);
    state_->total += sum_;
    state_->count += count_;
  }
  bool snapshot_state(Buffer& out) override {
    if (!snapshottable_) return false;
    out.write<std::int64_t>(sum_);
    out.write<std::int64_t>(count_);
    return true;
  }
  void restore_state(Buffer& in) override {
    sum_ = in.read<std::int64_t>();
    count_ = in.read<std::int64_t>();
  }

 private:
  std::shared_ptr<TotalState> state_;
  std::int64_t poison_;
  bool snapshottable_;
  std::int64_t sum_ = 0;
  std::int64_t count_ = 0;
};

FilterGroup summing_group(const char* name, std::shared_ptr<TotalState> state,
                          int stage, std::int64_t poison = -1,
                          bool snapshottable = true, int copies = 1) {
  return {name,
          [state, poison, snapshottable] {
            return std::make_unique<SummingSink>(state, poison, snapshottable);
          },
          copies, stage};
}

// Sum of the values an AddOne chain delivers to the sink: the source emits
// 0..n-1 and each AddOne stage shifts by one.
std::int64_t expected_total(int n, std::int64_t offset) {
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) total += i + offset;
  return total;
}

RunnerConfig checkpointed_config(std::size_t interval, std::size_t batch = 1,
                                 std::size_t capacity = 8) {
  RunnerConfig config;
  config.stream_capacity = capacity;
  config.batch_size = batch;
  config.checkpoint_interval = interval;
  return config;
}

// ---------------------------------------------------------------------------
// Policy plumbing
// ---------------------------------------------------------------------------

TEST(FaultPolicy, ActionNamesRoundTrip) {
  for (FaultAction action : {FaultAction::kFailFast, FaultAction::kRestartCopy,
                             FaultAction::kDropPacket}) {
    const auto parsed = FaultPolicy::parse_action(
        FaultPolicy::action_name(action));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, action);
  }
  EXPECT_FALSE(FaultPolicy::parse_action("retry-forever").has_value());
}

// ---------------------------------------------------------------------------
// restart-copy
// ---------------------------------------------------------------------------

TEST(RestartCopy, ReplaysInflightPacketAndCompletes) {
  // Acceptance scenario: a 4-stage pipeline with a throw-on-Nth fault in a
  // middle stage completes with the exact sink output — the in-flight
  // packet is replayed, nothing is lost or duplicated.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid1", 1, 1));
  groups.push_back(addone_group("mid2", 1, 2));
  groups.push_back(sink_group("sink", state, 3));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid1:throw@5")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_TRUE(outcome.stats.completed);
  EXPECT_EQ(state->values, expected_values(32, 2));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].group, "mid1");
  EXPECT_EQ(outcome.stats.faults[0].packet_index, 5);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  EXPECT_EQ(outcome.stats.total_retries(), 1);
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 0);
  EXPECT_EQ(outcome.stats.fault_policy, "restart-copy");
  // The trace carries the fault surface.
  const support::PipelineTrace trace = outcome.stats.trace();
  ASSERT_EQ(trace.faults.size(), 1u);
  EXPECT_TRUE(trace.completed);
  EXPECT_EQ(trace.fault_policy, "restart-copy");
}

TEST(RestartCopy, SourceRestartDeliversExactlyOnce) {
  // A deterministic source that faults mid-emission re-computes on restart;
  // skip_emits suppresses what was already delivered, so downstream sees
  // every packet exactly once.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 24, 1, 0));
  groups.push_back(sink_group("sink", state, 1));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("src:throw@3")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(24, 0));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  EXPECT_EQ(outcome.stats.group_metrics[0].retries, 1);
}

TEST(RestartCopy, RepeatedTransientFaultsAllRecover) {
  // A refiring positional fault hits every restarted instance at its own
  // packet 2; the replay mechanism absorbs each hit without losing data.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 30, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@2!")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(30, 1));
  EXPECT_GE(outcome.stats.total_retries(), 2);
}

TEST(RestartCopy, PoisonPacketExhaustsRetriesAndKillsCopy) {
  // The filter itself rejects one specific payload, so the replayed packet
  // fails on every attempt: bounded consecutive retries must declare the
  // copy dead and surface the loss as the run error.
  struct Poisoned : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        const std::int64_t v = b->read<std::int64_t>();
        if (v == 13) throw std::runtime_error("poison payload");
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 20, 1, 0));
  groups.push_back(
      {"poisoned", [] { return std::make_unique<Poisoned>(); }, 1, 1});
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy, 2));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("all 1 copies dead"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 3u);
  EXPECT_EQ(outcome.stats.faults.back().resolution,
            support::FaultResolution::kCopyDead);
  // The source still ran to completion: the dead stage drained its input.
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 20);
}

// ---------------------------------------------------------------------------
// drop-packet
// ---------------------------------------------------------------------------

TEST(DropPacket, SkipsPoisonedPacketAndCompletes) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 40, 1, 0));
  groups.push_back(addone_group("mid1", 1, 1));
  groups.push_back(addone_group("mid2", 1, 2));
  groups.push_back(sink_group("sink", state, 3));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kDropPacket));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid2:throw@7")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // Single-copy stages are FIFO: mid2's packet 7 carried value 8, so the
  // sink is missing exactly 9.
  std::multiset<std::int64_t> expected = expected_values(40, 2);
  expected.erase(expected.find(9));
  EXPECT_EQ(state->values, expected);
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 1);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kDroppedPacket);
  EXPECT_EQ(outcome.stats.group_metrics[2].dropped_packets, 1);
}

TEST(DropPacket, PersistentFaultKillsStageAndDrainsUpstream) {
  // Every attempt of the only middle copy dies on its first packet: after
  // max_retries fruitless restarts the stage is declared dead. The run
  // fails, but gracefully — the source completes into the drained stream
  // and the sink sees a clean end-of-stream instead of hanging.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 500, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kDropPacket, 2));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@0!")));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("all 1 copies dead"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 3u);
  EXPECT_EQ(outcome.stats.faults.back().resolution,
            support::FaultResolution::kCopyDead);
  // Upstream finished (drain unblocked it) and the drained buffers are
  // accounted on the link.
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 500);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 2u);
  EXPECT_GE(outcome.stats.link_metrics[0].dropped_buffers, 490);
  // Downstream saw end-of-stream, not a hang.
  EXPECT_EQ(outcome.stats.group_metrics[2].packets_in, 0);
}

TEST(DropPacket, CorruptionCaughtByValidatingSinkIsDropped) {
  // Injected corruption + a checksum-validating sink: the bad packet is
  // detected, thrown away under drop-packet, and the run completes.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 20, 1, 0));
  groups.push_back(sink_group("sink", state, 1, /*validate=*/true));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kDropPacket));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("sink:corrupt@2")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  std::multiset<std::int64_t> expected = expected_values(20, 0);
  expected.erase(expected.find(2));
  EXPECT_EQ(state->values, expected);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].what, "checksum mismatch");
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 1);
}

// ---------------------------------------------------------------------------
// fail-fast (the default) keeps its historical shape — but with stats
// ---------------------------------------------------------------------------

TEST(FailFast, RunSupervisedKeepsPartialStatsAndError) {
  struct Exploder : Filter {
    void process(FilterContext& ctx) override {
      ctx.read();
      throw std::runtime_error("boom");
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 1000, 1, 0));
  groups.push_back(
      {"exploder", [] { return std::make_unique<Exploder>(); }, 1, 1});
  PipelineRunner runner(std::move(groups), 2);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_FALSE(outcome.ok());
  EXPECT_THROW(std::rethrow_exception(outcome.error), std::runtime_error);
  // The stats survived the failure: partial metrics, the fault record, and
  // the error text all came back instead of being thrown away.
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_EQ(outcome.stats.error, "boom");
  EXPECT_EQ(outcome.stats.fault_policy, "fail-fast");
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kFatal);
  ASSERT_EQ(outcome.stats.group_metrics.size(), 2u);
  EXPECT_GT(outcome.stats.group_metrics[0].packets_out, 0);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 1u);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, FiresOnStalledStage) {
  // A filter that stops moving data (long sleep, not a blocked stream
  // wait) must trip the no-progress timeout; the watchdog tears the run
  // down and records the stall.
  struct Staller : Filter {
    void process(FilterContext& ctx) override {
      int seen = 0;
      while (auto b = ctx.read()) {
        if (++seen == 2)
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 50, 1, 0));
  groups.push_back(
      {"staller", [] { return std::make_unique<Staller>(); }, 1, 1});
  FaultPolicy policy = policy_for(FaultAction::kRestartCopy);
  policy.stage_timeout_seconds = 0.06;
  PipelineRunner runner(std::move(groups), 4, policy);
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("watchdog"), std::string::npos)
      << outcome.stats.error;
  ASSERT_GE(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kWatchdog);
  EXPECT_EQ(outcome.stats.faults[0].group, "staller");
}

TEST(Watchdog, QuietOnHealthyPipelineWithBlockedStages) {
  // A slow source keeps the sink parked in a blocking read most of the
  // time; blocked waits are exempt, and the source itself makes progress
  // well inside the timeout — no false positive.
  struct SlowSource : Filter {
    void process(FilterContext& ctx) override {
      for (int i = 0; i < 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        Buffer b;
        b.write<std::int64_t>(i);
        b.write<std::int64_t>(i ^ kMagic);
        ctx.emit(std::move(b));
      }
    }
  };
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"slow-src", [] { return std::make_unique<SlowSource>(); }, 1, 0});
  groups.push_back(sink_group("sink", state, 1));
  FaultPolicy policy;  // fail-fast; only the watchdog is armed
  policy.stage_timeout_seconds = 0.5;
  PipelineRunner runner(std::move(groups), 4, policy);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_TRUE(outcome.stats.faults.empty());
  EXPECT_EQ(state->values.size(), 10u);
}

// ---------------------------------------------------------------------------
// Fault plan parsing and determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryShape) {
  const support::FaultPlan plan = support::parse_fault_plan(
      "stage1:throw@5,decomp#1:sleep@3=0.2,link:drop@~0.05,"
      "mid:corrupt@2+4,src:throw@0!",
      7);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.specs[0].group, "stage1");
  EXPECT_EQ(plan.specs[0].kind, support::FaultKind::kThrow);
  EXPECT_EQ(plan.specs[0].nth_packet, 5);
  EXPECT_EQ(plan.specs[0].copy, -1);
  EXPECT_FALSE(plan.specs[0].refire);
  EXPECT_EQ(plan.specs[1].group, "decomp");
  EXPECT_EQ(plan.specs[1].copy, 1);
  EXPECT_EQ(plan.specs[1].kind, support::FaultKind::kSleep);
  EXPECT_DOUBLE_EQ(plan.specs[1].sleep_seconds, 0.2);
  EXPECT_EQ(plan.specs[2].kind, support::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan.specs[2].probability, 0.05);
  EXPECT_EQ(plan.specs[2].nth_packet, -1);
  EXPECT_EQ(plan.specs[3].repeat_every, 4);
  EXPECT_TRUE(plan.specs[4].refire);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(support::parse_fault_plan("nocolon"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:zap@5"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@x"), std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@~2"),
               std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan("g:throw@5=0.2"),
               std::invalid_argument);
  EXPECT_THROW(support::parse_fault_plan(":throw@5"), std::invalid_argument);
}

TEST(FaultPlan, DeterministicTriggersRespectAttemptGating) {
  const support::FaultPlan one_shot = support::parse_fault_plan("g:throw@4");
  EXPECT_NE(one_shot.match("g", 0, 0, 4), nullptr);
  EXPECT_EQ(one_shot.match("g", 0, 1, 4), nullptr);  // transient: cleared
  EXPECT_EQ(one_shot.match("g", 0, 0, 3), nullptr);
  EXPECT_EQ(one_shot.match("other", 0, 0, 4), nullptr);
  const support::FaultPlan refire = support::parse_fault_plan("g:throw@4!");
  EXPECT_NE(refire.match("g", 0, 3, 4), nullptr);  // persistent
  const support::FaultPlan strided = support::parse_fault_plan("g:throw@2+3");
  EXPECT_NE(strided.match("g", 0, 0, 2), nullptr);
  EXPECT_NE(strided.match("g", 0, 0, 5), nullptr);
  EXPECT_EQ(strided.match("g", 0, 0, 4), nullptr);
  const support::FaultPlan copy1 = support::parse_fault_plan("g#1:throw@0");
  EXPECT_EQ(copy1.match("g", 0, 0, 0), nullptr);
  EXPECT_NE(copy1.match("g", 1, 0, 0), nullptr);
}

TEST(FaultPlan, ProbabilisticTriggersAreSeededAndAttemptAware) {
  const support::FaultPlan a = support::parse_fault_plan("g:throw@~0.2", 1);
  const support::FaultPlan b = support::parse_fault_plan("g:throw@~0.2", 2);
  int fires_a = 0;
  int fires_b = 0;
  int agree = 0;
  for (std::int64_t p = 0; p < 500; ++p) {
    const bool fa = a.match("g", 0, 0, p) != nullptr;
    const bool fb = b.match("g", 0, 0, p) != nullptr;
    fires_a += fa ? 1 : 0;
    fires_b += fb ? 1 : 0;
    agree += fa == fb ? 1 : 0;
    // Same seed, same coordinates: always the same answer.
    EXPECT_EQ(fa, a.match("g", 0, 0, p) != nullptr);
  }
  EXPECT_GT(fires_a, 50);  // ~100 expected
  EXPECT_LT(fires_a, 200);
  EXPECT_LT(agree, 500);  // different seeds pick different packets
  // A retry re-rolls: at least one faulting packet passes on attempt 1.
  bool some_recover = false;
  for (std::int64_t p = 0; p < 500; ++p) {
    if (a.match("g", 0, 0, p) != nullptr && a.match("g", 0, 1, p) == nullptr)
      some_recover = true;
  }
  EXPECT_TRUE(some_recover);
}

// ---------------------------------------------------------------------------
// Injection shims
// ---------------------------------------------------------------------------

TEST(FlakyLink, DropsPacketsDeterministically) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 30, 1, 0));
  groups.push_back({"link",
                    support::make_flaky_link(
                        support::parse_fault_plan("link:drop@4"), "link"),
                    1, 1});
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8);
  RunStats stats = runner.run();
  std::multiset<std::int64_t> expected = expected_values(30, 0);
  expected.erase(expected.find(4));
  EXPECT_EQ(state->values, expected);
  EXPECT_EQ(stats.group_metrics[1].packets_in, 30);
  EXPECT_EQ(stats.group_metrics[1].packets_out, 29);
}

TEST(FaultInjectingFilter, WrapsOneGroupOnly) {
  // The wrapper injects faults for its group without a runner-wide hook;
  // under drop-packet the poisoned packet disappears and the run finishes.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 16, 1, 0));
  groups.push_back({"mid",
                    support::wrap_with_faults(
                        [] { return std::make_unique<AddOne>(); },
                        support::parse_fault_plan("mid:throw@3!"), "mid"),
                    1, 1});
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8,
                        policy_for(FaultAction::kDropPacket, 5));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values.size(),
            16u - static_cast<std::size_t>(
                      outcome.stats.total_dropped_packets()));
  EXPECT_GE(outcome.stats.total_dropped_packets(), 1);
}

TEST(FireFault, CorruptFlipsOneByteInPlace) {
  Buffer b;
  b.write<std::int64_t>(42);
  Buffer original = b;
  support::FaultSpec spec;
  spec.kind = support::FaultKind::kCorrupt;
  support::fire_fault(spec, &b);
  ASSERT_EQ(b.size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b.peek_at<unsigned char>(i) != original.peek_at<unsigned char>(i))
      ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  // Corrupting is idempotent in shape: firing again flips it back.
  support::fire_fault(spec, &b);
  EXPECT_EQ(b.peek_at<std::int64_t>(0), 42);
}

// ---------------------------------------------------------------------------
// Stress (the CI fault-injection job runs these repeatedly under TSan)
// ---------------------------------------------------------------------------

TEST(FaultStress, ProbabilisticFaultsRecoverExactlyOnceUnderRestartCopy) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 200, 2, 0));
    groups.push_back(addone_group("mid1", 2, 1));
    groups.push_back(addone_group("mid2", 2, 2));
    groups.push_back(sink_group("sink", state, 3));
    PipelineRunner runner(
        std::move(groups), 8,
        policy_for(FaultAction::kRestartCopy, /*max_retries=*/6));
    runner.set_packet_hook(support::make_fault_hook(support::parse_fault_plan(
        "src:throw@~0.03,mid1:throw@~0.06,mid2:throw@~0.06", seed)));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.stats.error;
    // Exactly-once delivery survives restarts across every stage.
    EXPECT_EQ(state->values, expected_values(200, 2)) << "seed " << seed;
  }
}

TEST(FaultStress, DropPacketConservesAccounting) {
  for (std::uint64_t seed : {3u, 11u}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 200, 2, 0));
    groups.push_back(addone_group("mid", 2, 1));
    groups.push_back(sink_group("sink", state, 2));
    PipelineRunner runner(
        std::move(groups), 8,
        policy_for(FaultAction::kDropPacket, /*max_retries=*/10));
    runner.set_packet_hook(support::make_fault_hook(
        support::parse_fault_plan("mid:throw@~0.08", seed)));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.stats.error;
    // Every packet is either delivered or accounted as dropped.
    EXPECT_EQ(static_cast<std::int64_t>(state->values.size()),
              200 - outcome.stats.total_dropped_packets())
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Batched transport under faults (batch_size > 1): producer-side batches may
// be partially filled when an attempt dies, and consumer-side batches may be
// partially read. Exactly-once replay and drop accounting must both survive.
// ---------------------------------------------------------------------------

RunnerConfig batched_config(std::size_t batch, std::size_t capacity = 8) {
  RunnerConfig config;
  config.stream_capacity = capacity;
  config.batch_size = batch;
  return config;
}

TEST(BatchedFaults, RestartCopyReplaysExactlyOnceWithBatches) {
  for (std::size_t batch : {std::size_t{4}, std::size_t{64}}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 1, 0));
    groups.push_back(addone_group("mid1", 1, 1));
    groups.push_back(addone_group("mid2", 1, 2));
    groups.push_back(sink_group("sink", state, 3));
    PipelineRunner runner(std::move(groups), batched_config(batch),
                          policy_for(FaultAction::kRestartCopy));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("mid1:throw@5")));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "batch " << batch << ": "
                              << outcome.stats.error;
    // The failed attempt's partially-filled output batch is flushed before
    // the delivered count is read, so replay suppression stays exact even
    // when the batch never reached batch_size.
    EXPECT_EQ(state->values, expected_values(32, 2)) << "batch " << batch;
    EXPECT_EQ(outcome.stats.total_retries(), 1) << "batch " << batch;
    EXPECT_EQ(outcome.stats.total_dropped_packets(), 0) << "batch " << batch;
    EXPECT_EQ(outcome.stats.batch_size, static_cast<std::int64_t>(batch));
  }
}

TEST(BatchedFaults, SourceRestartFlushesPartialBatchExactlyOnce) {
  // The source faults while its second batch is still open (24 packets,
  // batch 16): what was already coalesced must count as delivered exactly
  // when it landed on the stream, so the replay skips the right prefix.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 24, 1, 0));
  groups.push_back(sink_group("sink", state, 1));
  PipelineRunner runner(std::move(groups), batched_config(16),
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("src:throw@19")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(24, 0));
  EXPECT_EQ(outcome.stats.total_retries(), 1);
}

TEST(BatchedFaults, DropPacketDropsExactlyTheFaultedPacket) {
  for (std::size_t batch : {std::size_t{4}, std::size_t{16}}) {
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 40, 1, 0));
    groups.push_back(addone_group("mid", 1, 1));
    groups.push_back(sink_group("sink", state, 2));
    PipelineRunner runner(std::move(groups), batched_config(batch),
                          policy_for(FaultAction::kDropPacket));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("mid:throw@7")));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "batch " << batch << ": "
                              << outcome.stats.error;
    EXPECT_EQ(outcome.stats.total_dropped_packets(), 1) << "batch " << batch;
    EXPECT_EQ(static_cast<std::int64_t>(state->values.size()),
              40 - outcome.stats.total_dropped_packets())
        << "batch " << batch;
  }
}

TEST(BatchedFaults, DeadStageAccountsUnreadBatchedBuffersAsDropped) {
  // A persistently-failing middle copy dies holding popped-but-unread
  // buffers from its last input batch. Those must surface in the dropped
  // accounting rather than vanish: every buffer the source pushed is either
  // dropped by the dying stage (read-then-faulted or unread at death) or
  // discarded by the post-mortem drain.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 200, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), batched_config(8),
                        policy_for(FaultAction::kDropPacket, 2));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@0!")));
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 200);
  ASSERT_EQ(outcome.stats.link_metrics.size(), 2u);
  const support::LinkMetrics& in_link = outcome.stats.link_metrics[0];
  EXPECT_EQ(in_link.buffers, 200);
  EXPECT_EQ(outcome.stats.group_metrics[1].dropped_packets +
                in_link.dropped_buffers,
            200);
  // Downstream saw a clean end-of-stream, not a hang.
  EXPECT_EQ(outcome.stats.group_metrics[2].packets_in, 0);
}

TEST(BatchedFaults, StressExactlyOnceAcrossSeedsAndBatchSizes) {
  for (std::uint64_t seed : {1u, 9u}) {
    for (std::size_t batch : {std::size_t{4}, std::size_t{64}}) {
      auto state = std::make_shared<SinkState>();
      std::vector<FilterGroup> groups;
      groups.push_back(source_group("src", 200, 2, 0));
      groups.push_back(addone_group("mid1", 2, 1));
      groups.push_back(addone_group("mid2", 2, 2));
      groups.push_back(sink_group("sink", state, 3));
      PipelineRunner runner(std::move(groups), batched_config(batch),
                            policy_for(FaultAction::kRestartCopy, 6));
      runner.set_packet_hook(
          support::make_fault_hook(support::parse_fault_plan(
              "src:throw@~0.03,mid1:throw@~0.06,mid2:throw@~0.06", seed)));
      RunOutcome outcome = runner.run_supervised();
      ASSERT_TRUE(outcome.ok()) << "seed " << seed << " batch " << batch
                                << ": " << outcome.stats.error;
      EXPECT_EQ(state->values, expected_values(200, 2))
          << "seed " << seed << " batch " << batch;
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpointed recovery: restart-copy + checkpoint_interval makes stateful
// stages exactly-once — a restarted instance restores the last snapshot and
// replays only the packets consumed after it (docs/ROBUSTNESS.md).
// ---------------------------------------------------------------------------

TEST(CheckpointedRecovery, StatefulSinkStateSurvivesRestart) {
  for (std::size_t interval : {std::size_t{1}, std::size_t{16}}) {
    auto state = std::make_shared<TotalState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 1, 0));
    groups.push_back(addone_group("mid", 1, 1));
    groups.push_back(summing_group("sum", state, 2));
    PipelineRunner runner(std::move(groups), checkpointed_config(interval),
                          policy_for(FaultAction::kRestartCopy));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("sum:throw@9")));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << "interval " << interval << ": "
                              << outcome.stats.error;
    // The restored accumulator plus the replayed suffix reproduce the
    // fault-free total exactly — nothing lost, nothing double-counted.
    EXPECT_EQ(state->total, expected_total(32, 1)) << "interval " << interval;
    EXPECT_EQ(state->count, 32) << "interval " << interval;
    ASSERT_EQ(outcome.stats.faults.size(), 1u);
    EXPECT_EQ(outcome.stats.faults[0].resolution,
              support::FaultResolution::kRestoredCheckpoint);
    EXPECT_EQ(outcome.stats.total_dropped_packets(), 0);
    EXPECT_GE(outcome.stats.group_metrics[2].checkpoints, 1);
  }
}

TEST(CheckpointedRecovery, MidStageRestartDedupsReemissions) {
  // The faulting stage sits mid-pipeline: after the restore its replayed
  // input would re-emit packets the sink already received. skip_emits
  // suppresses exactly the delivered prefix, so the downstream multiset
  // stays byte-exact.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2, /*validate=*/true));
  PipelineRunner runner(std::move(groups), checkpointed_config(4),
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@9")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(32, 1));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRestoredCheckpoint);
  EXPECT_GE(outcome.stats.group_metrics[1].checkpoints, 1);
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 0);
}

TEST(CheckpointedRecovery, WithoutSnapshotFallsBackToInflightReplay) {
  // A filter that declines to snapshot keeps the legacy behavior: the
  // in-flight packet is replayed but the accumulator restarts from zero,
  // so the prefix consumed before the fault is missing from the total.
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(
      summing_group("sum", state, 2, /*poison=*/-1, /*snapshottable=*/false));
  PipelineRunner runner(std::move(groups), checkpointed_config(4),
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("sum:throw@9")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // Values 1..9 were summed by the dead instance and lost; the replayed
  // packet (value 10) and everything after it survive.
  EXPECT_EQ(state->total, expected_total(32, 1) - expected_total(9, 1));
  EXPECT_EQ(state->count, 23);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  EXPECT_EQ(outcome.stats.group_metrics[2].checkpoints, 0);
}

TEST(CheckpointedRecovery, MidSnapshotFaultKeepsPreviousSnapshot) {
  // A fault thrown mid-snapshot (the @ckpt trigger fires inside the commit
  // callback, before the new snapshot is recorded) must leave the previous
  // snapshot intact: the restart restores it and the run stays exact.
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(summing_group("sum", state, 2));
  PipelineRunner runner(std::move(groups), checkpointed_config(4),
                        policy_for(FaultAction::kRestartCopy));
  const support::FaultPlan plan =
      support::parse_fault_plan("sum:throw@ckpt1");
  runner.set_checkpoint_hook(support::make_checkpoint_fault_hook(plan));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->total, expected_total(32, 1));
  EXPECT_EQ(state->count, 32);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRestoredCheckpoint);
  // The failed commit does not count; the surviving instance keeps
  // snapshotting on the interval.
  EXPECT_GE(outcome.stats.group_metrics[2].checkpoints, 2);
}

// ---------------------------------------------------------------------------
// Run-level checkpointing: consistent cuts persisted to a file, and resume.
// ---------------------------------------------------------------------------

TEST(RunCheckpointFile, SaveLoadRoundTrip) {
  RunCheckpoint ckpt;
  ckpt.id = 7;
  ckpt.source_delivered = 112;
  ckpt.at_seconds = 1.25;
  ckpt.source_copies = {60, 52};
  ckpt.group_copies = {2, 2, 1};
  ckpt.stages.push_back({"mid", 0, {std::byte{0x00}, std::byte{0xfe}}});
  ckpt.stages.push_back({"mid", 1, {std::byte{0x7f}}});
  ckpt.stages.push_back({"sink", 0, {}});
  const std::string path = "cgp_ckpt_roundtrip_test.json";
  save_checkpoint(ckpt, path);
  const RunCheckpoint loaded = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.id, 7);
  EXPECT_EQ(loaded.source_delivered, 112);
  EXPECT_DOUBLE_EQ(loaded.at_seconds, 1.25);
  EXPECT_EQ(loaded.source_copies, (std::vector<std::int64_t>{60, 52}));
  EXPECT_EQ(loaded.group_copies, (std::vector<int>{2, 2, 1}));
  ASSERT_EQ(loaded.stages.size(), 3u);
  EXPECT_EQ(loaded.stages[0].group, "mid");
  EXPECT_EQ(loaded.stages[0].copy, 0);
  EXPECT_EQ(loaded.stages[0].state,
            (std::vector<std::byte>{std::byte{0x00}, std::byte{0xfe}}));
  EXPECT_EQ(loaded.stages[1].group, "mid");
  EXPECT_EQ(loaded.stages[1].copy, 1);
  EXPECT_EQ(loaded.stages[2].group, "sink");
  EXPECT_EQ(loaded.stages[2].copy, 0);
  EXPECT_TRUE(loaded.stages[2].state.empty());
  EXPECT_THROW(load_checkpoint("cgp_no_such_checkpoint.json"),
               std::runtime_error);
}

TEST(RunCheckpointFile, LoadRejectsCorruptTruncatedEmptyFiles) {
  RunCheckpoint ckpt;
  ckpt.id = 3;
  ckpt.source_delivered = 24;
  ckpt.source_copies = {24};
  ckpt.group_copies = {1, 1};
  ckpt.stages.push_back({"sum", 0, {std::byte{0x2a}, std::byte{0x2a}}});
  const std::string path = "cgp_ckpt_corrupt_test.json";
  save_checkpoint(ckpt, path);
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  auto write_file = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  };
  // A single flipped bit in the snapshot payload must fail the checksum
  // with a diagnostic, never hand back a cut with silently different state.
  {
    std::string flipped = text;
    const std::size_t pos = flipped.find("2a2a");
    ASSERT_NE(pos, std::string::npos);
    flipped[pos] = '2' == flipped[pos] ? 'b' : '2';
    write_file(flipped);
    try {
      load_checkpoint(path);
      FAIL() << "bit-flipped checkpoint loaded";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
          << e.what();
    }
  }
  // A torn write (truncated JSON) must fail as corrupt/truncated.
  write_file(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  // So must an empty file.
  write_file("");
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  // And a file missing its checksum field entirely (v2 requires it).
  {
    std::string stripped = text;
    const std::size_t pos = stripped.find("\"checksum\"");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t end = stripped.find('\n', pos);
    stripped.erase(pos, end - pos + 1);
    // Remove the dangling comma on the previous line if present.
    write_file(stripped);
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST(RunCheckpointFile, EveryRejectionNamesThePathAndAReason) {
  // Operators resume from checkpoints by path, often several per run
  // directory: a rejection that does not say WHICH file failed and WHY is
  // useless at 3am. Exercise every rejection class and require both.
  const std::string path = "cgp_ckpt_diagnostics_test.json";
  auto write_file = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  };
  const auto expect_names_path = [&](const std::string& file,
                                     const std::string& reason_word) {
    try {
      load_checkpoint(file);
      FAIL() << "expected rejection mentioning '" << reason_word << "'";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(file), std::string::npos) << what;
      EXPECT_NE(what.find(reason_word), std::string::npos) << what;
    }
  };
  // Missing file.
  expect_names_path("cgp_no_such_checkpoint.json", "cannot open");
  // Unparseable JSON.
  write_file("{ not json");
  expect_names_path(path, "corrupt or truncated");
  // Valid JSON, but not a checkpoint at all.
  write_file("{\"hello\": 1}");
  expect_names_path(path, "not a cgpipe checkpoint file");
  // A schema from the future.
  write_file("{\"schema\": \"cgpipe-checkpoint-v99\"}");
  expect_names_path(path, "unknown schema");
  // Structurally a checkpoint, but a field is the wrong shape.
  write_file(
      "{\"schema\": \"cgpipe-checkpoint-v2\", \"id\": \"three\", "
      "\"source_delivered\": 0, \"at_seconds\": 0, \"stages\": []}");
  expect_names_path(path, "is malformed");
  // Bad hex in a stage snapshot is a malformed-field rejection too.
  write_file(
      "{\"schema\": \"cgpipe-checkpoint-v2\", \"id\": 1, "
      "\"source_delivered\": 0, \"at_seconds\": 0, \"stages\": "
      "[{\"group\": \"sum\", \"state\": \"zz\"}]}");
  expect_names_path(path, "is malformed");
  // Complete but missing the integrity checksum.
  write_file(
      "{\"schema\": \"cgpipe-checkpoint-v2\", \"id\": 1, "
      "\"source_delivered\": 0, \"at_seconds\": 0, \"stages\": []}");
  expect_names_path(path, "missing checksum");
  std::remove(path.c_str());
}

TEST(RunCheckpointFile, LoadsLegacyV1Files) {
  // Files written before replication support: no checksum, no per-copy
  // arrays. They must still load, with source_copies defaulting to the
  // single implicit source cursor.
  const std::string path = "cgp_ckpt_legacy_v1_test.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "{\n"
           "  \"schema\": \"cgpipe-checkpoint-v1\",\n"
           "  \"id\": 2,\n"
           "  \"source_delivered\": 12,\n"
           "  \"at_seconds\": 0.5,\n"
           "  \"stages\": [\n"
           "    {\"group\": \"mid\", \"state\": \"\"},\n"
           "    {\"group\": \"sum\", \"state\": \"0a00\"}\n"
           "  ]\n"
           "}\n";
  }
  const RunCheckpoint loaded = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.id, 2);
  EXPECT_EQ(loaded.source_delivered, 12);
  EXPECT_EQ(loaded.source_copies, (std::vector<std::int64_t>{12}));
  EXPECT_TRUE(loaded.group_copies.empty());
  ASSERT_EQ(loaded.stages.size(), 2u);
  EXPECT_EQ(loaded.stages[0].copy, 0);
  EXPECT_EQ(loaded.stages[1].group, "sum");
  EXPECT_EQ(loaded.stages[1].state,
            (std::vector<std::byte>{std::byte{0x0a}, std::byte{0x00}}));
}

TEST(RunLevelCheckpoint, HealthyRunWritesConsistentCuts) {
  const std::string path = "cgp_ckpt_healthy_test.json";
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(summing_group("sum", state, 2));
  RunnerConfig config = checkpointed_config(4);
  config.checkpoint_path = path;
  PipelineRunner runner(std::move(groups), config,
                        policy_for(FaultAction::kRestartCopy));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->total, expected_total(32, 1));
  // The run surface records every completed cut...
  ASSERT_FALSE(outcome.stats.checkpoints.empty());
  const support::CheckpointRecord& last = outcome.stats.checkpoints.back();
  EXPECT_EQ(last.group, "run");
  EXPECT_EQ(last.copy, -1);
  EXPECT_GT(last.packet_index, 0);
  EXPECT_GE(last.quiesce_seconds, 0.0);
  // ...and the file holds the latest one: aligned source progress plus one
  // snapshot per consuming group, in pipeline order.
  const RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_GT(cut.source_delivered, 0);
  EXPECT_EQ(cut.source_delivered % 4, 0);
  ASSERT_EQ(cut.stages.size(), 2u);
  EXPECT_EQ(cut.stages[0].group, "mid");
  EXPECT_EQ(cut.stages[1].group, "sum");
  EXPECT_FALSE(cut.stages[1].state.empty());
}

TEST(RunLevelCheckpoint, RejectsInvalidConfigurations) {
  // The marker protocol needs a positive interval to pace injections.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 8, 1, 0));
  groups.push_back(sink_group("sink", state, 1));
  RunnerConfig config;  // interval 0
  config.checkpoint_path = "cgp_ckpt_invalid_test.json";
  PipelineRunner runner(std::move(groups), config);
  EXPECT_THROW(runner.run_supervised(), std::invalid_argument);
}

TEST(RunLevelCheckpoint, ReplicatedStagesWriteConsistentCuts) {
  // The lifted restriction: every copy of every stage contributes a part
  // and the committed file records per-copy source cursors, per-copy
  // snapshots, and the replica plan.
  const std::string path = "cgp_ckpt_replicated_test.json";
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 2, 0));
  groups.push_back(addone_group("mid", 2, 1));
  groups.push_back(summing_group("sum", state, 2, -1, true, 2));
  RunnerConfig config = checkpointed_config(4);
  config.checkpoint_path = path;
  PipelineRunner runner(std::move(groups), config,
                        policy_for(FaultAction::kRestartCopy));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->total, expected_total(32, 1));
  EXPECT_EQ(state->count, 32);
  // The run surface ends on a completed cut summary whose parts cover
  // every consuming copy (2x mid + 2x sum), preceded by per-copy part
  // records.
  ASSERT_FALSE(outcome.stats.checkpoints.empty());
  const support::CheckpointRecord& last = outcome.stats.checkpoints.back();
  EXPECT_EQ(last.group, "run");
  EXPECT_EQ(last.copy, -1);
  EXPECT_EQ(last.parts, 4);
  bool saw_part = false;
  for (const support::CheckpointRecord& c : outcome.stats.checkpoints)
    if (c.group == "mid" && c.copy == 1) saw_part = true;
  EXPECT_TRUE(saw_part);
  // The committed file is a fully replicated cut: aligned per-copy source
  // cursors, the replica plan, and one part per (stage, copy).
  const RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  ASSERT_EQ(cut.source_copies.size(), 2u);
  EXPECT_EQ(cut.source_copies[0] + cut.source_copies[1],
            cut.source_delivered);
  EXPECT_EQ(cut.group_copies, (std::vector<int>{2, 2, 2}));
  ASSERT_EQ(cut.stages.size(), 4u);
  EXPECT_EQ(cut.stages[0].group, "mid");
  EXPECT_EQ(cut.stages[0].copy, 0);
  EXPECT_EQ(cut.stages[1].group, "mid");
  EXPECT_EQ(cut.stages[1].copy, 1);
  EXPECT_EQ(cut.stages[2].group, "sum");
  EXPECT_EQ(cut.stages[2].copy, 0);
  EXPECT_EQ(cut.stages[3].group, "sum");
  EXPECT_EQ(cut.stages[3].copy, 1);
  // At least one summing copy accumulated state by the last cut.
  EXPECT_FALSE(cut.stages[2].state.empty() && cut.stages[3].state.empty());
}

TEST(RunLevelCheckpoint, ReplicatedResumeAfterFatalFaultCompletesExactly) {
  const std::string path = "cgp_ckpt_replicated_resume_test.json";
  // Run 1: replicated source and mid stages; the single summing copy
  // rejects value 14 on sight, dies, and the run fails. Cuts completed
  // before the poison survive on disk.
  {
    auto state = std::make_shared<TotalState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 2, 0));
    groups.push_back(addone_group("mid", 2, 1));
    groups.push_back(summing_group("sum", state, 2, /*poison=*/14));
    RunnerConfig config = checkpointed_config(4);
    config.checkpoint_path = path;
    PipelineRunner runner(std::move(groups), config,
                          policy_for(FaultAction::kRestartCopy, 2));
    RunOutcome outcome = runner.run_supervised();
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.stats.faults.back().resolution,
              support::FaultResolution::kCopyDead);
  }
  RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_GT(cut.source_delivered, 0);
  ASSERT_EQ(cut.source_copies.size(), 2u);
  EXPECT_EQ(cut.group_copies, (std::vector<int>{2, 2, 1}));
  // Run 2: same shape, poison gone, resumed copy-by-copy. Each source copy
  // skips exactly the packets the cut covers for it, so the delivered
  // multiset — and therefore the total — matches an uninterrupted run.
  {
    auto state = std::make_shared<TotalState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 2, 0));
    groups.push_back(addone_group("mid", 2, 1));
    groups.push_back(summing_group("sum", state, 2));
    RunnerConfig config = checkpointed_config(4);
    config.resume = &cut;
    PipelineRunner runner(std::move(groups), config,
                          policy_for(FaultAction::kRestartCopy));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
    EXPECT_TRUE(outcome.stats.faults.empty());
    EXPECT_EQ(state->total, expected_total(32, 1));
    EXPECT_EQ(state->count, 32);
    // Only the uncovered suffix was re-emitted.
    EXPECT_EQ(outcome.stats.group_metrics[0].packets_out,
              32 - cut.source_delivered);
  }
}

TEST(RunLevelCheckpoint, ResumeAfterFatalFaultCompletesExactly) {
  const std::string path = "cgp_ckpt_resume_test.json";
  // Run 1: the sink rejects value 14 on sight — the replayed packet fails
  // every attempt, the copy dies, the run fails. Cuts completed before the
  // poison survive on disk.
  {
    auto state = std::make_shared<TotalState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 1, 0));
    groups.push_back(addone_group("mid", 1, 1));
    groups.push_back(summing_group("sum", state, 2, /*poison=*/14));
    RunnerConfig config = checkpointed_config(4);
    config.checkpoint_path = path;
    PipelineRunner runner(std::move(groups), config,
                          policy_for(FaultAction::kRestartCopy, 2));
    RunOutcome outcome = runner.run_supervised();
    EXPECT_FALSE(outcome.ok());
    EXPECT_NE(outcome.stats.error.find("all 1 copies dead"),
              std::string::npos)
        << outcome.stats.error;
    EXPECT_EQ(outcome.stats.faults.back().resolution,
              support::FaultResolution::kCopyDead);
  }
  // The file holds the last cut completed before the fatal packet: the
  // source had delivered 12 and the sink had summed values 1..12.
  RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_EQ(cut.source_delivered, 12);
  ASSERT_EQ(cut.stages.size(), 2u);
  EXPECT_EQ(cut.stages[0].group, "mid");
  EXPECT_EQ(cut.stages[1].group, "sum");
  // Run 2: same pipeline shape, poison gone, resumed from the cut. The
  // source skips the 12 covered packets and the sink's restored
  // accumulator plus the remainder reproduce the fault-free total exactly.
  {
    auto state = std::make_shared<TotalState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 32, 1, 0));
    groups.push_back(addone_group("mid", 1, 1));
    groups.push_back(summing_group("sum", state, 2));
    RunnerConfig config = checkpointed_config(4);
    config.resume = &cut;
    PipelineRunner runner(std::move(groups), config,
                          policy_for(FaultAction::kRestartCopy));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
    EXPECT_TRUE(outcome.stats.completed);
    EXPECT_TRUE(outcome.stats.faults.empty());
    EXPECT_EQ(state->total, expected_total(32, 1));
    EXPECT_EQ(state->count, 32);
    // Only the uncovered suffix was re-emitted.
    EXPECT_EQ(outcome.stats.group_metrics[0].packets_out, 32 - 12);
  }
}

TEST(RunLevelCheckpoint, ResumeRejectsMismatchedPipeline) {
  // Wrong stage name: rejected with a side-by-side diff naming both sides.
  {
    RunCheckpoint cut;
    cut.id = 0;
    cut.source_delivered = 4;
    cut.source_copies = {4};
    cut.group_copies = {1, 1};
    cut.stages.push_back({"other", 0, {}});
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 8, 1, 0));
    groups.push_back(sink_group("sink", state, 1));
    RunnerConfig config;
    config.resume = &cut;
    PipelineRunner runner(std::move(groups), config);
    try {
      runner.run_supervised();
      FAIL() << "mismatched resume accepted";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("does not match"), std::string::npos) << what;
      EXPECT_NE(what.find("sink"), std::string::npos) << what;
      EXPECT_NE(what.find("other"), std::string::npos) << what;
    }
  }
  // Right stage names, wrong replica counts: also a diff, naming the
  // counts on both sides.
  {
    RunCheckpoint cut;
    cut.id = 0;
    cut.source_delivered = 4;
    cut.source_copies = {4};
    cut.group_copies = {1, 2};
    cut.stages.push_back({"sink", 0, {}});
    cut.stages.push_back({"sink", 1, {}});
    auto state = std::make_shared<SinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(source_group("src", 8, 1, 0));
    groups.push_back(sink_group("sink", state, 1));
    RunnerConfig config;
    config.resume = &cut;
    PipelineRunner runner(std::move(groups), config);
    try {
      runner.run_supervised();
      FAIL() << "replica-mismatched resume accepted";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("sink x1"), std::string::npos) << what;
      EXPECT_NE(what.find("sink x2"), std::string::npos) << what;
    }
  }
}

TEST(RunLevelCheckpoint, MarkerFaultOnConsumerCopyDoesNotWedgeTheCut) {
  // @mark fires the instant cut 0's marker reaches mid copy 1. The
  // supervisor's gap repair registers the failed copy's part (unusable)
  // and forwards the marker on restart, so neither the cut collector nor
  // the downstream stage wedges, and later cuts commit to disk normally.
  const std::string path = "cgp_ckpt_marker_fault_test.json";
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 2, 0));
  groups.push_back(addone_group("mid", 2, 1));
  groups.push_back(summing_group("sum", state, 2, -1, true, 2));
  RunnerConfig config = checkpointed_config(4);
  config.checkpoint_path = path;
  PipelineRunner runner(std::move(groups), config,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_marker_hook(support::make_marker_fault_hook(
      support::parse_fault_plan("mid#1:throw@mark0")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->total, expected_total(32, 1));
  EXPECT_EQ(state->count, 32);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].group, "mid");
  EXPECT_EQ(outcome.stats.faults[0].copy, 1);
  // A later cut (unaffected by the fault) still reached the file with a
  // full complement of per-copy parts.
  const RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_GT(cut.id, 0);
  ASSERT_EQ(cut.stages.size(), 4u);
}

TEST(RunLevelCheckpoint, MarkerFaultOnSourceCopyStaysExact) {
  // The source-side variant: the hook throws between marker injection and
  // the copy's progress-part submission. Gap repair submits the cursor and
  // forwards the marker on restart; replay dedup keeps delivery exact.
  const std::string path = "cgp_ckpt_marker_src_fault_test.json";
  auto state = std::make_shared<TotalState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 32, 2, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(summing_group("sum", state, 2));
  RunnerConfig config = checkpointed_config(4);
  config.checkpoint_path = path;
  PipelineRunner runner(std::move(groups), config,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_marker_hook(support::make_marker_fault_hook(
      support::parse_fault_plan("src#0:throw@mark1")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->total, expected_total(32, 1));
  EXPECT_EQ(state->count, 32);
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].group, "src");
  const RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  ASSERT_EQ(cut.source_copies.size(), 2u);
  EXPECT_EQ(cut.source_copies[0] + cut.source_copies[1],
            cut.source_delivered);
}

// ---------------------------------------------------------------------------
// Retry backoff: watchdog-exempt while parked, interruptible by teardown.
// ---------------------------------------------------------------------------

TEST(RetryBackoff, BackoffWaitIsExemptFromWatchdog) {
  // The backoff sleep (0.3s) is far longer than the stage timeout (0.08s):
  // a parked copy must read as waiting, not hung, so the run completes
  // without a watchdog fault.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 30, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(sink_group("sink", state, 2));
  FaultPolicy policy = policy_for(FaultAction::kRestartCopy);
  policy.backoff_initial_seconds = 0.3;
  policy.backoff_max_seconds = 0.3;
  policy.stage_timeout_seconds = 0.08;
  PipelineRunner runner(std::move(groups), 4, policy);
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@5")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(30, 1));
  ASSERT_EQ(outcome.stats.faults.size(), 1u);
  EXPECT_EQ(outcome.stats.faults[0].resolution,
            support::FaultResolution::kRetried);
  // The copy really did park for the full backoff before recovering.
  EXPECT_GE(outcome.stats.wall_seconds, 0.25);
}

TEST(RetryBackoff, TeardownInterruptsParkedBackoff) {
  // One stage trips the watchdog while another stage's copy sits at the
  // start of a 5-second backoff. Teardown must wake the parked copy
  // immediately — the run ends in well under the backoff, not after it.
  struct Staller : Filter {
    void process(FilterContext& ctx) override {
      int seen = 0;
      while (auto b = ctx.read()) {
        if (++seen == 2)
          std::this_thread::sleep_for(std::chrono::milliseconds(600));
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 50, 1, 0));
  groups.push_back(addone_group("mid", 1, 1));
  groups.push_back(
      {"staller", [] { return std::make_unique<Staller>(); }, 1, 2});
  FaultPolicy policy = policy_for(FaultAction::kRestartCopy);
  policy.backoff_initial_seconds = 5.0;
  policy.backoff_max_seconds = 5.0;
  policy.stage_timeout_seconds = 0.08;
  PipelineRunner runner(std::move(groups), 4, policy);
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@2")));
  const auto t0 = std::chrono::steady_clock::now();
  RunOutcome outcome = runner.run_supervised();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.stats.error.find("watchdog"), std::string::npos)
      << outcome.stats.error;
  EXPECT_LT(elapsed, 2.0);
}

// ---------------------------------------------------------------------------
// @ckpt fault-plan triggers
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesCheckpointTriggers) {
  const support::FaultPlan plan = support::parse_fault_plan(
      "a:throw@ckpt,b:throw@ckpt2+3!,c:sleep@ckpt1=0.01");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_TRUE(plan.specs[0].at_checkpoint);
  EXPECT_EQ(plan.specs[0].nth_packet, 0);  // bare "ckpt" = first snapshot
  EXPECT_FALSE(plan.specs[0].refire);
  EXPECT_TRUE(plan.specs[1].at_checkpoint);
  EXPECT_EQ(plan.specs[1].nth_packet, 2);
  EXPECT_EQ(plan.specs[1].repeat_every, 3);
  EXPECT_TRUE(plan.specs[1].refire);
  EXPECT_TRUE(plan.specs[2].at_checkpoint);
  EXPECT_EQ(plan.specs[2].kind, support::FaultKind::kSleep);
  EXPECT_DOUBLE_EQ(plan.specs[2].sleep_seconds, 0.01);
  EXPECT_THROW(support::parse_fault_plan("g:throw@ckptx"),
               std::invalid_argument);
}

TEST(FaultPlan, CheckpointTriggersMatchOnlyCheckpoints) {
  const support::FaultPlan plan =
      support::parse_fault_plan("g:throw@ckpt1,g:throw@4");
  // @ckpt specs are invisible to the per-packet matcher and vice versa.
  EXPECT_NE(plan.match("g", 0, 0, 4), nullptr);
  EXPECT_EQ(plan.match("g", 0, 0, 1), nullptr);
  EXPECT_NE(plan.match_checkpoint("g", 0, 0, 1), nullptr);
  EXPECT_EQ(plan.match_checkpoint("g", 0, 0, 4), nullptr);
  // Same attempt gating as packet triggers: transient unless refired.
  EXPECT_EQ(plan.match_checkpoint("g", 0, 1, 1), nullptr);
  const support::FaultPlan refire = support::parse_fault_plan("g:throw@ckpt!");
  EXPECT_NE(refire.match_checkpoint("g", 0, 3, 0), nullptr);
}

TEST(FaultPlan, ParsesAndMatchesMarkerTriggers) {
  const support::FaultPlan plan =
      support::parse_fault_plan("a:throw@mark,b#1:throw@mark2,b:throw@4");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_TRUE(plan.specs[0].at_marker);
  EXPECT_EQ(plan.specs[0].nth_packet, 0);  // bare "mark" = first cut
  EXPECT_TRUE(plan.specs[1].at_marker);
  EXPECT_EQ(plan.specs[1].nth_packet, 2);
  EXPECT_EQ(plan.specs[1].copy, 1);
  // @mark specs are invisible to the packet and checkpoint matchers, and
  // match only the named copy at the named cut id, first attempt only.
  EXPECT_EQ(plan.match("a", 0, 0, 0), nullptr);
  EXPECT_EQ(plan.match_checkpoint("a", 0, 0, 0), nullptr);
  EXPECT_NE(plan.match_marker("a", 0, 0, 0), nullptr);
  EXPECT_EQ(plan.match_marker("a", 0, 0, 1), nullptr);
  EXPECT_NE(plan.match_marker("b", 1, 0, 2), nullptr);
  EXPECT_EQ(plan.match_marker("b", 0, 0, 2), nullptr);
  EXPECT_EQ(plan.match_marker("b", 1, 1, 2), nullptr);
  EXPECT_EQ(plan.match_marker("b", 1, 0, 4), nullptr);  // @4 is per-packet
  EXPECT_THROW(support::parse_fault_plan("g:throw@markx"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checkpoint stress (the CI checkpoint-stress job runs these repeatedly
// under TSan): stateful exactly-once recovery must hold under probabilistic
// faults, batching, and both tight and loose snapshot intervals.
// ---------------------------------------------------------------------------

TEST(CheckpointStress, ProbabilisticFaultsKeepStatefulTotalsExact) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    for (std::size_t interval : {std::size_t{1}, std::size_t{4}}) {
      auto state = std::make_shared<TotalState>();
      std::vector<FilterGroup> groups;
      groups.push_back(source_group("src", 200, 1, 0));
      groups.push_back(addone_group("mid", 2, 1));
      groups.push_back(summing_group("sum", state, 2));
      PipelineRunner runner(
          std::move(groups), checkpointed_config(interval, /*batch=*/4),
          policy_for(FaultAction::kRestartCopy, /*max_retries=*/8));
      runner.set_packet_hook(support::make_fault_hook(
          support::parse_fault_plan("mid:throw@~0.05,sum:throw@~0.04",
                                    seed)));
      RunOutcome outcome = runner.run_supervised();
      ASSERT_TRUE(outcome.ok()) << "seed " << seed << " interval " << interval
                                << ": " << outcome.stats.error;
      EXPECT_EQ(state->total, expected_total(200, 1))
          << "seed " << seed << " interval " << interval;
      EXPECT_EQ(state->count, 200)
          << "seed " << seed << " interval " << interval;
    }
  }
}

TEST(CheckpointStress, BatchedDeterministicFaultsAcrossIntervals) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
    for (std::size_t interval : {std::size_t{1}, std::size_t{16}}) {
      auto state = std::make_shared<TotalState>();
      std::vector<FilterGroup> groups;
      groups.push_back(source_group("src", 96, 1, 0));
      groups.push_back(addone_group("mid", 1, 1));
      groups.push_back(summing_group("sum", state, 2));
      PipelineRunner runner(std::move(groups),
                            checkpointed_config(interval, batch),
                            policy_for(FaultAction::kRestartCopy));
      runner.set_packet_hook(support::make_fault_hook(
          support::parse_fault_plan("mid:throw@3,sum:throw@7")));
      RunOutcome outcome = runner.run_supervised();
      ASSERT_TRUE(outcome.ok()) << "batch " << batch << " interval "
                                << interval << ": " << outcome.stats.error;
      EXPECT_EQ(state->total, expected_total(96, 1))
          << "batch " << batch << " interval " << interval;
      EXPECT_EQ(outcome.stats.total_dropped_packets(), 0)
          << "batch " << batch << " interval " << interval;
    }
  }
}

TEST(FaultStress, SleepFaultsOnlyDelayTheRun) {
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 60, 2, 0));
  groups.push_back(addone_group("mid", 2, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 8);
  runner.set_packet_hook(support::make_fault_hook(
      support::parse_fault_plan("mid:sleep@~0.1=0.002", 5)));
  RunStats stats = runner.run();
  EXPECT_EQ(state->values, expected_values(60, 1));
  EXPECT_TRUE(stats.faults.empty());  // sleeps are not failures
}

}  // namespace
}  // namespace cgp::dc
