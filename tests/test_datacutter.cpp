// DataCutter runtime tests: buffers, streams, filters, transparent copies,
// buffer pooling, packet batching, and seeded randomized stream stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <set>
#include <thread>

#include "datacutter/buffer.h"
#include "datacutter/buffer_pool.h"
#include "datacutter/runner.h"
#include "datacutter/stream.h"
#include "support/rng.h"

namespace cgp::dc {
namespace {

TEST(Buffer, TypedRoundTrip) {
  Buffer buffer;
  buffer.write<std::int32_t>(-7);
  buffer.write<double>(2.5);
  buffer.write<std::uint8_t>(255);
  EXPECT_EQ(buffer.read<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(buffer.read<double>(), 2.5);
  EXPECT_EQ(buffer.read<std::uint8_t>(), 255);
  EXPECT_TRUE(buffer.exhausted());
}

TEST(Buffer, ReadPastEndThrows) {
  Buffer buffer;
  buffer.write<std::int32_t>(1);
  buffer.read<std::int32_t>();
  EXPECT_THROW(buffer.read<std::int32_t>(), std::out_of_range);
}

TEST(Buffer, SlotPatching) {
  Buffer buffer;
  std::size_t slot = buffer.reserve_slot<std::int64_t>();
  buffer.write<std::int32_t>(42);
  buffer.patch_slot<std::int64_t>(slot, 99);
  EXPECT_EQ(buffer.read<std::int64_t>(), 99);
  EXPECT_EQ(buffer.read<std::int32_t>(), 42);
}

TEST(Buffer, SeekAndRemaining) {
  Buffer buffer;
  buffer.write<std::int32_t>(1);
  buffer.write<std::int32_t>(2);
  EXPECT_EQ(buffer.remaining(), 8u);
  buffer.seek(4);
  EXPECT_EQ(buffer.read<std::int32_t>(), 2);
  EXPECT_THROW(buffer.seek(100), std::out_of_range);
}

TEST(Buffer, BytesRoundTrip) {
  Buffer buffer;
  const char payload[] = "filter-stream";
  buffer.write_bytes(payload, sizeof(payload));
  char out[sizeof(payload)];
  buffer.read_bytes(out, sizeof(payload));
  EXPECT_STREQ(out, payload);
}

TEST(Stream, FifoSingleProducer) {
  Stream stream(4);
  stream.set_producers(1);
  for (int i = 0; i < 3; ++i) {
    Buffer b;
    b.write<std::int32_t>(i);
    stream.push(std::move(b));
  }
  stream.close();
  for (int i = 0; i < 3; ++i) {
    auto b = stream.pop();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->read<std::int32_t>(), i);
  }
  EXPECT_FALSE(stream.pop().has_value());
}

TEST(Stream, StatsTrackBytes) {
  Stream stream(4);
  stream.set_producers(1);
  Buffer b;
  b.write<std::int64_t>(5);
  stream.push(std::move(b));
  EXPECT_EQ(stream.buffers_pushed(), 1);
  EXPECT_EQ(stream.bytes_pushed(), 8);
  stream.close();
}

TEST(Stream, ClosesOnlyWhenAllProducersDone) {
  Stream stream(4);
  stream.set_producers(2);
  stream.close();
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto b = stream.pop();
    got = b.has_value();
  });
  Buffer payload;
  payload.write<std::int32_t>(1);
  stream.push(std::move(payload));
  stream.close();
  consumer.join();
  EXPECT_TRUE(got.load());
  EXPECT_FALSE(stream.pop().has_value());
}

TEST(Stream, BackpressureBlocksProducer) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer first;
  first.write<std::int32_t>(0);
  stream.push(std::move(first));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    Buffer b;
    b.write<std::int32_t>(1);
    stream.push(std::move(b));
    second_pushed = true;
    stream.close();
  });
  // Give the producer a chance; it must be blocked on capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  stream.pop();
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(Stream, AbortUnblocksConsumer) {
  Stream stream(4);
  stream.set_producers(1);
  std::atomic<bool> got_eof{false};
  std::thread consumer([&] {
    got_eof = !stream.pop().has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stream.abort();
  consumer.join();
  EXPECT_TRUE(got_eof.load());
}

TEST(Stream, AbortUnblocksBackpressuredProducer) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer first;
  first.write<std::int32_t>(0);
  stream.push(std::move(first));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    Buffer b;
    b.write<std::int32_t>(1);
    stream.push(std::move(b));  // blocked on capacity until abort
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  stream.abort();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(stream.pop().has_value());  // aborted: drained as EOF
}

// ---------------------------------------------------------------------------
// Observability counters
// ---------------------------------------------------------------------------

TEST(StreamMetrics, OccupancyHighWaterTracksDeepestQueue) {
  Stream stream(8);
  stream.set_producers(1);
  for (int i = 0; i < 5; ++i) {
    Buffer b;
    b.write<std::int32_t>(i);
    stream.push(std::move(b));
  }
  EXPECT_EQ(stream.occupancy_high_water(), 5u);
  stream.pop();
  stream.pop();
  // Draining must not lower the mark.
  EXPECT_EQ(stream.occupancy_high_water(), 5u);
  Buffer b;
  b.write<std::int32_t>(9);
  stream.push(std::move(b));
  EXPECT_EQ(stream.occupancy_high_water(), 5u);  // queue is at 4 now
  stream.close();
}

TEST(StreamMetrics, BackpressureAccruesProducerBlockTime) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer first;
  first.write<std::int32_t>(0);
  stream.push(std::move(first));
  EXPECT_DOUBLE_EQ(stream.producer_block_seconds(), 0.0);
  std::thread producer([&] {
    Buffer b;
    b.write<std::int32_t>(1);
    stream.push(std::move(b));  // blocks: capacity 1, slow consumer
    stream.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stream.pop();
  producer.join();
  EXPECT_GE(stream.producer_block_seconds(), 0.02);
  support::LinkMetrics m = stream.metrics();
  EXPECT_EQ(m.buffers, 2);
  EXPECT_EQ(m.capacity, 1);
  EXPECT_EQ(m.occupancy_high_water, 1);
  EXPECT_GE(m.producer_block_seconds, 0.02);
}

TEST(StreamMetrics, EmptyQueueAccruesConsumerBlockTime) {
  Stream stream(4);
  stream.set_producers(1);
  std::thread consumer([&] { stream.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Buffer b;
  b.write<std::int32_t>(1);
  stream.push(std::move(b));
  consumer.join();
  stream.close();
  EXPECT_GE(stream.consumer_block_seconds(), 0.02);
  // A pop that never waits adds nothing further... up to scheduler noise;
  // the counter is monotonic and finite either way.
  const double before = stream.consumer_block_seconds();
  EXPECT_FALSE(stream.pop().has_value());
  EXPECT_GE(stream.consumer_block_seconds(), before);
}

TEST(StreamMetrics, AbortLeavesCountersConsistent) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer first;
  first.write<std::int32_t>(0);
  stream.push(std::move(first));
  std::thread producer([&] {
    Buffer b;
    b.write<std::int32_t>(1);
    stream.push(std::move(b));  // blocked until abort; buffer is dropped
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stream.abort();
  producer.join();
  support::LinkMetrics m = stream.metrics();
  // The dropped push counts block time but never a buffer.
  EXPECT_EQ(m.buffers, 1);
  EXPECT_EQ(m.bytes, 4);
  EXPECT_EQ(m.occupancy_high_water, 1);
  EXPECT_GE(m.producer_block_seconds, 0.01);
  // Post-abort traffic stays invisible to the counters.
  Buffer late;
  late.write<std::int32_t>(7);
  stream.push(std::move(late));
  EXPECT_EQ(stream.buffers_pushed(), 1);
}

TEST(Stream, PushAfterAbortSignalsDrop) {
  Stream stream(4);
  stream.set_producers(1);
  Buffer accepted;
  accepted.write<std::int32_t>(1);
  EXPECT_TRUE(stream.push(std::move(accepted)));
  EXPECT_EQ(stream.dropped_buffers(), 0);
  // Abort discards the queued buffer (a consumer can never reach it) and
  // counts it dropped, keeping pushed == popped + dropped exact.
  stream.abort();
  EXPECT_EQ(stream.dropped_buffers(), 1);
  Buffer dropped;
  dropped.write<std::int32_t>(2);
  EXPECT_FALSE(stream.push(std::move(dropped)));
  EXPECT_EQ(stream.dropped_buffers(), 2);
  EXPECT_EQ(stream.buffers_pushed(), 1);  // drops never count as pushed
  EXPECT_EQ(stream.metrics().dropped_buffers, 2);
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

TEST(BufferPool, AdoptAndReleaseStorageRoundTrip) {
  Buffer buffer(256);
  buffer.write<std::int64_t>(42);
  std::vector<std::byte> storage = buffer.release_storage();
  EXPECT_GE(storage.capacity(), 256u);
  Buffer reborn = Buffer::adopt(std::move(storage));
  EXPECT_EQ(reborn.size(), 0u);  // logically empty, capacity retained
  EXPECT_GE(reborn.capacity(), 256u);
  reborn.write<std::int64_t>(7);
  EXPECT_EQ(reborn.read<std::int64_t>(), 7);
}

TEST(BufferPool, MissThenHit) {
  BufferPool pool;
  Buffer first = pool.acquire(1024);
  EXPECT_EQ(pool.acquires(), 1);
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 1);
  first.write<std::int32_t>(5);
  pool.recycle(std::move(first));
  EXPECT_EQ(pool.recycles(), 1);
  Buffer second = pool.acquire(1024);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_GE(second.capacity(), 1024u);
  EXPECT_EQ(second.size(), 0u);  // recycled storage comes back empty
  EXPECT_DOUBLE_EQ(pool.hit_rate(), 0.5);
}

TEST(BufferPool, RecycledCapacityAlwaysCoversRequest) {
  BufferPool pool;
  // Recycle a 100-byte-capacity vector: it lands in class floor-log2(cap).
  Buffer small(100);
  pool.recycle(std::move(small));
  // A request larger than that capacity must not be served by it.
  Buffer big = pool.acquire(100000);
  EXPECT_GE(big.capacity(), 100000u);
}

TEST(BufferPool, PerClassCapDiscardsOverflow) {
  BufferPool pool(/*max_per_class=*/2);
  for (int i = 0; i < 4; ++i) {
    pool.recycle(Buffer(512));
  }
  EXPECT_EQ(pool.recycles(), 4);
  EXPECT_EQ(pool.discarded(), 2);
}

TEST(BufferPool, ZeroCapacityBuffersAreNotPooled) {
  BufferPool pool;
  pool.recycle(Buffer{});
  EXPECT_EQ(pool.recycles(), 0);
  (void)pool.acquire(64);
  EXPECT_EQ(pool.hits(), 0);
}

TEST(BufferPool, MetricsSnapshotMatchesCounters) {
  BufferPool pool;
  pool.recycle(Buffer(64));
  (void)pool.acquire(64);
  (void)pool.acquire(64);
  support::PoolMetrics m = pool.metrics();
  EXPECT_EQ(m.acquires, 2);
  EXPECT_EQ(m.hits, 1);
  EXPECT_EQ(m.misses, 1);
  EXPECT_EQ(m.recycles, 1);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.5);
}

TEST(Buffer, ReleaseStorageResetsTag) {
  // Regression: recycled storage must not carry the checkpoint-marker tag
  // into its next life — a pooled data packet would otherwise be eaten by
  // FilterContext::read()'s marker interception downstream.
  Buffer buffer(64);
  buffer.write<std::int32_t>(1);
  buffer.set_tag(kCheckpointMarkerTag);
  std::vector<std::byte> storage = buffer.release_storage();
  EXPECT_EQ(buffer.tag(), 0u);
  Buffer reborn = Buffer::adopt(std::move(storage));
  EXPECT_EQ(reborn.tag(), 0u);
}

TEST(BufferPool, GeometryRaisesRetentionAboveDefaultCap) {
  // With the default cap a batch-sized recycle burst overflows the class
  // and the storage is lost; set_geometry retains enough copies per class
  // for capacity + batch + in-flight replicas, so the burst survives.
  BufferPool capped(/*max_per_class=*/2);
  BufferPool sized(/*max_per_class=*/2);
  sized.set_geometry(/*links=*/1, /*stream_capacity=*/4, /*batch_size=*/8,
                     /*max_copies=*/1);
  EXPECT_GE(sized.retention_per_class(), 4u + 7u + 2u * 8u);
  for (int i = 0; i < 16; ++i) {
    capped.recycle(Buffer(512));
    sized.recycle(Buffer(512));
  }
  EXPECT_EQ(capped.discarded(), 14);
  EXPECT_EQ(sized.discarded(), 0);
  for (int i = 0; i < 16; ++i) (void)sized.acquire(512);
  EXPECT_EQ(sized.hits(), 16);
}

TEST(BufferPool, PerClassCountersTrackTraffic) {
  BufferPool pool;
  // Two size classes: 512B (class 9) and 60000B (floor class 15).
  pool.recycle(Buffer(512));
  (void)pool.acquire(512);    // hit in class 9
  (void)pool.acquire(512);    // miss in class 9
  (void)pool.acquire(60000);  // miss in class 15
  support::PoolMetrics m = pool.metrics();
  ASSERT_EQ(m.classes.size(), 2u);
  const support::PoolClassMetrics& small = m.classes[0];
  EXPECT_EQ(small.class_index, 9);
  EXPECT_EQ(small.class_bytes, 512);
  EXPECT_EQ(small.acquires, 2);
  EXPECT_EQ(small.hits, 1);
  EXPECT_EQ(small.misses, 1);
  EXPECT_EQ(small.recycles, 1);
  EXPECT_EQ(small.high_water, 1);
  const support::PoolClassMetrics& large = m.classes[1];
  EXPECT_EQ(large.class_index, 15);
  EXPECT_EQ(large.acquires, 1);
  EXPECT_EQ(large.hits, 0);
}

// ---------------------------------------------------------------------------
// Packet batching
// ---------------------------------------------------------------------------

TEST(StreamBatch, PushBatchPreservesFifoOrder) {
  Stream stream(16);
  stream.set_producers(1);
  std::vector<Buffer> batch;
  for (int i = 0; i < 5; ++i) {
    Buffer b;
    b.write<std::int32_t>(i);
    batch.push_back(std::move(b));
  }
  EXPECT_EQ(stream.push_batch(batch), 5u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(stream.buffers_pushed(), 5);
  EXPECT_EQ(stream.batches_pushed(), 1);  // one enqueue for the whole batch
  stream.close();
  for (int i = 0; i < 5; ++i) {
    auto b = stream.pop();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->read<std::int32_t>(), i);
  }
  EXPECT_FALSE(stream.pop().has_value());
}

TEST(StreamBatch, BatchOvershootIsBounded) {
  // A batch waits for room for at least one buffer, then lands whole:
  // occupancy may overshoot to capacity + |batch| - 1, never more.
  Stream stream(2);
  stream.set_producers(1);
  Buffer head;
  head.write<std::int32_t>(0);
  stream.push(std::move(head));  // occupancy 1 < capacity: room for one
  std::vector<Buffer> batch;
  for (int i = 0; i < 4; ++i) {
    Buffer b;
    b.write<std::int32_t>(1 + i);
    batch.push_back(std::move(b));
  }
  EXPECT_EQ(stream.push_batch(batch), 4u);
  EXPECT_EQ(stream.occupancy_high_water(), 5u);  // capacity + |batch| - 1
  stream.close();
}

TEST(StreamBatch, PushBatchBlocksUntilRoomThenLandsWhole) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer head;
  head.write<std::int32_t>(-1);
  stream.push(std::move(head));  // stream is now full
  std::atomic<bool> landed{false};
  std::thread producer([&] {
    std::vector<Buffer> batch;
    for (int i = 0; i < 3; ++i) {
      Buffer b;
      b.write<std::int32_t>(i);
      batch.push_back(std::move(b));
    }
    EXPECT_EQ(stream.push_batch(batch), 3u);
    landed = true;
    stream.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(landed.load());  // no room: the whole batch waits
  stream.pop();
  producer.join();
  EXPECT_TRUE(landed.load());
  EXPECT_GE(stream.producer_block_seconds(), 0.01);
}

TEST(StreamBatch, AbortDropsWholeInflightBatch) {
  Stream stream(1);
  stream.set_producers(1);
  Buffer head;
  head.write<std::int32_t>(-1);
  stream.push(std::move(head));
  std::atomic<std::size_t> accepted{99};
  std::thread producer([&] {
    std::vector<Buffer> batch;
    for (int i = 0; i < 3; ++i) {
      Buffer b;
      b.write<std::int32_t>(i);
      batch.push_back(std::move(b));
    }
    accepted = stream.push_batch(batch);  // blocked until abort
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stream.abort();
  producer.join();
  EXPECT_EQ(accepted.load(), 0u);  // all-or-none: nothing partial delivered
  // Dropped: the 3-buffer batch plus the queued head buffer.
  EXPECT_EQ(stream.dropped_buffers(), 4);
  EXPECT_EQ(stream.buffers_pushed(), 1);
}

TEST(StreamBatch, PopBatchMovesUpToMax) {
  Stream stream(16);
  stream.set_producers(1);
  for (int i = 0; i < 7; ++i) {
    Buffer b;
    b.write<std::int32_t>(i);
    stream.push(std::move(b));
  }
  stream.close();
  std::vector<Buffer> out;
  EXPECT_EQ(stream.pop_batch(out, 4), 4u);
  EXPECT_EQ(stream.pop_batch(out, 4), 3u);
  ASSERT_EQ(out.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].read<std::int32_t>(), i);
  }
  EXPECT_EQ(stream.pop_batch(out, 4), 0u);  // EOS
}

TEST(StreamStress, RandomizedProducersConsumersPreserveAccounting) {
  // Seeded property test: random producer/consumer counts, capacities,
  // batch sizes, and interleaved close/abort/drain. The invariant under
  // test: every buffer a producer attempted is accounted for exactly once,
  // attempted == popped + dropped.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng setup(seed * 0x9E3779B9ULL);
    const int producers = static_cast<int>(setup.next_int(1, 4));
    const int consumers = static_cast<int>(setup.next_int(1, 4));
    const std::size_t capacity =
        static_cast<std::size_t>(setup.next_int(1, 16));
    const int per_producer = static_cast<int>(setup.next_int(40, 160));
    const bool chaos_abort = seed % 3 == 0;
    const bool drain_tail = seed % 4 == 0;

    Stream stream(capacity);
    stream.set_producers(producers);
    std::atomic<std::int64_t> attempted{0};
    std::atomic<std::int64_t> popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(seed * 1000 + static_cast<std::uint64_t>(p));
        int sent = 0;
        while (sent < per_producer) {
          const int batch_n = static_cast<int>(
              rng.next_int(1, std::min(8, per_producer - sent)));
          if (batch_n == 1 || rng.next_below(4) == 0) {
            Buffer b;
            b.write<std::int64_t>(sent);
            attempted.fetch_add(1, std::memory_order_relaxed);
            stream.push(std::move(b));
            ++sent;
          } else {
            std::vector<Buffer> batch;
            for (int i = 0; i < batch_n; ++i) {
              Buffer b;
              b.write<std::int64_t>(sent + i);
              batch.push_back(std::move(b));
            }
            attempted.fetch_add(batch_n, std::memory_order_relaxed);
            stream.push_batch(batch);
            sent += batch_n;
          }
        }
        stream.close();
      });
    }
    const int active_consumers = drain_tail ? consumers - 1 : consumers;
    if (drain_tail) {
      // One consumer slot is a drainer: it discards until EOS, counting
      // everything it swallows as dropped (the dead-stage recovery path).
      threads.emplace_back([&] { stream.drain(); });
    }
    for (int c = 0; c < active_consumers; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(seed * 2000 + static_cast<std::uint64_t>(c));
        for (;;) {
          if (rng.next_below(2) == 0) {
            std::vector<Buffer> got;
            const std::size_t n = stream.pop_batch(
                got, static_cast<std::size_t>(rng.next_int(1, 6)));
            if (n == 0) break;
            popped.fetch_add(static_cast<std::int64_t>(n),
                             std::memory_order_relaxed);
          } else {
            auto b = stream.pop();
            if (!b) break;
            popped.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::optional<std::thread> chaos;
    if (chaos_abort) {
      chaos.emplace([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        stream.abort();
      });
    }
    for (std::thread& t : threads) t.join();
    if (chaos) chaos->join();

    // Every attempted buffer is popped, dropped at abort, rejected after
    // abort, or discarded by drain — never lost, never double-counted.
    EXPECT_EQ(attempted.load(), popped.load() + stream.dropped_buffers())
        << "seed " << seed << ": producers=" << producers
        << " consumers=" << consumers << " capacity=" << capacity
        << " abort=" << chaos_abort;
    EXPECT_LE(stream.batches_pushed(), stream.buffers_pushed());
    if (!chaos_abort) {
      EXPECT_EQ(stream.buffers_pushed(),
                static_cast<std::int64_t>(producers) * per_producer)
          << "seed " << seed;
    }
  }
}

TEST(Stream, DrainCountsDiscardedBuffers) {
  Stream stream(8);
  stream.set_producers(1);
  for (int i = 0; i < 3; ++i) {
    Buffer b;
    b.write<std::int32_t>(i);
    stream.push(std::move(b));
  }
  stream.close();
  EXPECT_EQ(stream.drain(), 3);
  EXPECT_EQ(stream.dropped_buffers(), 3);
  EXPECT_EQ(stream.buffers_pushed(), 3);  // they were genuinely sent
  EXPECT_FALSE(stream.pop().has_value());
}

// ---------------------------------------------------------------------------
// Checkpoint markers: producer-side barrier merge, consumer-side broadcast
// ---------------------------------------------------------------------------

namespace {
bool is_marker(const Buffer& b, std::int64_t id) {
  if (b.tag() != kCheckpointMarkerTag) return false;
  Buffer copy = b;
  copy.seek(0);
  return copy.read<std::int64_t>() == id;
}

Buffer data_buffer(std::int64_t v) {
  Buffer b;
  b.write<std::int64_t>(v);
  return b;
}

std::int64_t data_value(Buffer b) {
  b.seek(0);
  return b.read<std::int64_t>();
}
}  // namespace

TEST(StreamMarker, BarrierMergesAcrossProducersBehindPreCutData) {
  // Two producers; the fast one parks at the barrier, so its post-cut data
  // cannot precede the merged marker in the queue.
  Stream stream(8);
  stream.set_producers(2);
  stream.set_consumers(1);
  std::thread fast([&] {
    stream.push(data_buffer(10));
    stream.push_marker(0);  // blocks until the slow producer arrives
    stream.push(data_buffer(11));
    stream.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stream.push(data_buffer(20));
  stream.push_marker(0);
  stream.close();
  fast.join();
  std::multiset<std::int64_t> before;
  std::optional<Buffer> b;
  while ((b = stream.pop(0)) && !is_marker(*b, 0))
    before.insert(data_value(std::move(*b)));
  ASSERT_TRUE(b.has_value()) << "marker never delivered";
  EXPECT_EQ(before, (std::multiset<std::int64_t>{10, 20}));
  b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(data_value(std::move(*b)), 11);  // post-cut data after the cut
  EXPECT_FALSE(stream.pop(0).has_value());
  // Markers are control traffic: never counted as data.
  EXPECT_EQ(stream.buffers_pushed(), 3);
}

TEST(StreamMarker, BroadcastDeliversToEachConsumerExactlyOnce) {
  Stream stream(8);
  stream.set_producers(1);
  stream.set_consumers(2);
  stream.push(data_buffer(1));
  stream.push_marker(0);
  stream.push(data_buffer(2));
  stream.close();
  // Consumer 0 takes the first data entry; consumer 1's first eligible
  // entry is the marker (data behind it stays competitive afterwards).
  auto b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(data_value(std::move(*b)), 1);
  b = stream.pop(1);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(is_marker(*b, 0));
  b = stream.pop(1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(data_value(std::move(*b)), 2);
  // Consumer 0 still gets its own copy of the marker before end-of-stream.
  b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(is_marker(*b, 0));
  EXPECT_FALSE(stream.pop(0).has_value());
  EXPECT_FALSE(stream.pop(1).has_value());
  EXPECT_EQ(stream.buffers_pushed(), 2);
}

TEST(StreamMarker, PopBatchNeverMixesMarkerWithData) {
  Stream stream(8);
  stream.set_producers(1);
  stream.set_consumers(1);
  stream.push(data_buffer(1));
  stream.push(data_buffer(2));
  stream.push_marker(0);
  stream.push(data_buffer(3));
  stream.push(data_buffer(4));
  stream.close();
  std::vector<Buffer> out;
  // The marker ends the first batch early...
  EXPECT_EQ(stream.pop_batch(out, 10, 0), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(data_value(std::move(out[0])), 1);
  EXPECT_EQ(data_value(std::move(out[1])), 2);
  // ...then travels alone...
  out.clear();
  EXPECT_EQ(stream.pop_batch(out, 10, 0), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(is_marker(out[0], 0));
  // ...and the post-cut data follows in order.
  out.clear();
  EXPECT_EQ(stream.pop_batch(out, 10, 0), 2u);
  out.clear();
  EXPECT_EQ(stream.pop_batch(out, 10, 0), 0u);
}

TEST(StreamMarker, ClosedProducerCountsTowardEveryBarrier) {
  // A copy that finished early must not wedge the cut: its close() counts
  // as arrival at every current and future marker.
  Stream stream(8);
  stream.set_producers(2);
  stream.set_consumers(1);
  stream.push(data_buffer(1));
  stream.close();  // producer A done for good
  EXPECT_TRUE(stream.push_marker(0));  // producer B merges alone
  stream.push(data_buffer(2));
  stream.close();
  auto b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(data_value(std::move(*b)), 1);
  b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(is_marker(*b, 0));
  b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(data_value(std::move(*b)), 2);
  EXPECT_FALSE(stream.pop(0).has_value());
}

TEST(StreamMarker, RetiredConsumerReleasesPendingMarkers) {
  // When a consumer copy dies, queued markers it would have taken are
  // released as soon as every surviving consumer has taken them.
  Stream stream(8);
  stream.set_producers(1);
  stream.set_consumers(2);
  stream.push_marker(0);
  auto b = stream.pop(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(is_marker(*b, 0));
  stream.retire_consumer();  // consumer 1 is gone; the marker is released
  stream.close();
  EXPECT_FALSE(stream.pop(0).has_value());
}

// ---------------------------------------------------------------------------
// Pipelines
// ---------------------------------------------------------------------------

class CountingSource : public Filter {
 public:
  explicit CountingSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
      ctx.add_ops(1.0);
    }
  }

 private:
  int n_;
};

class Doubler : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      std::int64_t v = b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v * 2);
      ctx.emit(std::move(out));
      ctx.add_ops(1.0);
    }
  }
};

struct SumSinkState {
  std::mutex mutex;
  std::int64_t total = 0;
  int buffers = 0;
};

class SumSink : public Filter {
 public:
  explicit SumSink(std::shared_ptr<SumSinkState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      std::lock_guard lock(state_->mutex);
      state_->total += b->read<std::int64_t>();
      ++state_->buffers;
    }
  }

 private:
  std::shared_ptr<SumSinkState> state_;
};

TEST(Runner, ThreeStagePipeline) {
  auto state = std::make_shared<SumSinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back({"source", [] { return std::make_unique<CountingSource>(100); }, 1, 0});
  groups.push_back({"double", [] { return std::make_unique<Doubler>(); }, 1, 1});
  groups.push_back({"sink", [state] { return std::make_unique<SumSink>(state); }, 1, 2});
  PipelineRunner runner(std::move(groups));
  RunStats stats = runner.run();
  EXPECT_EQ(state->total, 2 * (99 * 100 / 2));
  EXPECT_EQ(state->buffers, 100);
  ASSERT_EQ(stats.link_buffers.size(), 2u);
  EXPECT_EQ(stats.link_buffers[0], 100);
  EXPECT_EQ(stats.link_bytes[0], 800);
  EXPECT_DOUBLE_EQ(stats.group_ops[0], 100.0);
}

TEST(Runner, TransparentCopiesPreserveResults) {
  for (int copies : {1, 2, 4}) {
    auto state = std::make_shared<SumSinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(
        {"source", [] { return std::make_unique<CountingSource>(64); }, copies, 0});
    groups.push_back(
        {"double", [] { return std::make_unique<Doubler>(); }, copies, 1});
    groups.push_back(
        {"sink", [state] { return std::make_unique<SumSink>(state); }, 1, 2});
    PipelineRunner runner(std::move(groups));
    runner.run();
    EXPECT_EQ(state->total, 2 * (63 * 64 / 2)) << copies << " copies";
    EXPECT_EQ(state->buffers, 64);
  }
}

TEST(StreamBatch, BatchedPipelineMatchesUnbatched) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    auto state = std::make_shared<SumSinkState>();
    std::vector<FilterGroup> groups;
    groups.push_back(
        {"source", [] { return std::make_unique<CountingSource>(100); }, 2, 0});
    groups.push_back(
        {"double", [] { return std::make_unique<Doubler>(); }, 2, 1});
    groups.push_back(
        {"sink", [state] { return std::make_unique<SumSink>(state); }, 1, 2});
    RunnerConfig config;
    config.stream_capacity = 4;
    config.batch_size = batch;
    PipelineRunner runner(std::move(groups), config);
    RunStats stats = runner.run();
    EXPECT_EQ(state->total, 2 * (99 * 100 / 2)) << "batch " << batch;
    EXPECT_EQ(state->buffers, 100);
    ASSERT_EQ(stats.link_metrics.size(), 2u);
    EXPECT_EQ(stats.link_metrics[0].buffers, 100);
    EXPECT_GT(stats.link_metrics[0].batches, 0);
    EXPECT_EQ(stats.batch_size, static_cast<std::int64_t>(batch));
    if (batch > 1) {
      // Coalescing must actually reduce enqueue operations.
      EXPECT_LT(stats.link_metrics[0].batches,
                stats.link_metrics[0].buffers);
    } else {
      EXPECT_EQ(stats.link_metrics[0].batches,
                stats.link_metrics[0].buffers);
    }
  }
}

TEST(StreamBatch, PooledPipelineRecyclesStorage) {
  struct RecyclingDoubler : Filter {
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        std::int64_t v = b->read<std::int64_t>();
        Buffer out = ctx.acquire_buffer(sizeof(std::int64_t));
        out.write<std::int64_t>(v * 2);
        ctx.recycle(std::move(*b));
        ctx.emit(std::move(out));
      }
    }
  };
  struct RecyclingSource : Filter {
    void process(FilterContext& ctx) override {
      for (int i = 0; i < 200; ++i) {
        if (i % ctx.copy_count() != ctx.copy_index()) continue;
        Buffer b = ctx.acquire_buffer(sizeof(std::int64_t));
        b.write<std::int64_t>(i);
        ctx.emit(std::move(b));
      }
    }
  };
  struct RecyclingSink : Filter {
    explicit RecyclingSink(std::shared_ptr<SumSinkState> state)
        : state_(std::move(state)) {}
    void process(FilterContext& ctx) override {
      while (auto b = ctx.read()) {
        {
          std::lock_guard lock(state_->mutex);
          state_->total += b->read<std::int64_t>();
          ++state_->buffers;
        }
        ctx.recycle(std::move(*b));
      }
    }
    std::shared_ptr<SumSinkState> state_;
  };
  auto state = std::make_shared<SumSinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<RecyclingSource>(); }, 1, 0});
  groups.push_back(
      {"double", [] { return std::make_unique<RecyclingDoubler>(); }, 1, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<RecyclingSink>(state); }, 1,
       2});
  RunnerConfig config;
  config.stream_capacity = 4;
  config.batch_size = 4;
  PipelineRunner runner(std::move(groups), config);
  RunStats stats = runner.run();
  EXPECT_EQ(state->total, 2 * (199 * 200 / 2));
  EXPECT_EQ(state->buffers, 200);
  // 400 acquires total; only the warm-up handful (bounded by the number of
  // buffers in flight) may miss.
  EXPECT_EQ(stats.pool.acquires, 400);
  EXPECT_GT(stats.pool.recycles, 0);
  EXPECT_GE(stats.pool.hit_rate(), 0.9);
}

TEST(Runner, EmptyPipelineRejected) {
  EXPECT_THROW(PipelineRunner(std::vector<FilterGroup>{}), std::invalid_argument);
}

TEST(Runner, MissingFactoryRejected) {
  std::vector<FilterGroup> groups;
  groups.push_back({"broken", nullptr, 1, 0});
  EXPECT_THROW(PipelineRunner{std::move(groups)}, std::invalid_argument);
}

TEST(Runner, NonPositiveCopiesRejected) {
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(1); }, 0, 0});
  EXPECT_THROW(PipelineRunner{std::move(groups)}, std::invalid_argument);
}

TEST(Runner, FilterExceptionPropagatesWithoutDeadlock) {
  struct Exploder : Filter {
    void process(FilterContext& ctx) override {
      // Consume one buffer, then fail; upstream keeps producing into a
      // bounded stream — the abort path must unblock it.
      ctx.read();
      throw std::runtime_error("boom");
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(1000); }, 1, 0});
  groups.push_back({"exploder", [] { return std::make_unique<Exploder>(); }, 1, 1});
  auto state = std::make_shared<SumSinkState>();
  groups.push_back({"sink", [state] { return std::make_unique<SumSink>(state); }, 1, 2});
  PipelineRunner runner(std::move(groups));
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(Runner, CollectsPerGroupAndPerLinkMetrics) {
  struct SlowSink : Filter {
    void process(FilterContext& ctx) override {
      while (ctx.read()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(20); }, 1, 0});
  groups.push_back({"sink", [] { return std::make_unique<SlowSink>(); }, 1, 1});
  // Capacity-1 stream: the fast source must stall on backpressure.
  PipelineRunner runner(std::move(groups), /*stream_capacity=*/1);
  RunStats stats = runner.run();

  ASSERT_EQ(stats.group_metrics.size(), 2u);
  ASSERT_EQ(stats.link_metrics.size(), 1u);
  const support::FilterMetrics& source = stats.group_metrics[0];
  const support::FilterMetrics& sink = stats.group_metrics[1];
  EXPECT_EQ(source.name, "source");
  EXPECT_EQ(source.copies, 1);
  EXPECT_EQ(source.packets_out, 20);
  EXPECT_EQ(source.bytes_out, 20 * 8);
  EXPECT_EQ(source.packets_in, 0);
  EXPECT_GT(source.stall_output_seconds, 0.01);  // blocked behind slow sink
  EXPECT_EQ(sink.packets_in, 20);
  EXPECT_EQ(sink.bytes_in, 20 * 8);
  // The sink sleeps ~2ms per packet between reads: busy time and latency
  // samples must see it.
  EXPECT_GT(sink.busy_seconds(), 0.02);
  EXPECT_EQ(sink.latency.count, 20);  // EOF read closes the last window
  EXPECT_GT(sink.latency.mean_seconds(), 1e-3);
  EXPECT_LE(source.latency.count, 20);

  const support::LinkMetrics& link = stats.link_metrics[0];
  EXPECT_EQ(link.buffers, 20);
  EXPECT_EQ(link.capacity, 1);
  EXPECT_EQ(link.occupancy_high_water, 1);
  EXPECT_GT(link.producer_block_seconds, 0.01);

  support::PipelineTrace trace = stats.trace();
  EXPECT_EQ(trace.packets, 20);
  ASSERT_EQ(trace.filters.size(), 2u);
  EXPECT_EQ(trace.bottleneck_filter(), 1);  // the sleeping sink
}

TEST(Runner, MetricsAggregateAcrossCopies) {
  auto state = std::make_shared<SumSinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(32); }, 2, 0});
  groups.push_back({"double", [] { return std::make_unique<Doubler>(); }, 3, 1});
  groups.push_back({"sink", [state] { return std::make_unique<SumSink>(state); }, 1, 2});
  PipelineRunner runner(std::move(groups));
  RunStats stats = runner.run();
  ASSERT_EQ(stats.group_metrics.size(), 3u);
  EXPECT_EQ(stats.group_metrics[0].copies, 2);
  EXPECT_EQ(stats.group_metrics[1].copies, 3);
  EXPECT_EQ(stats.group_metrics[0].packets_out, 32);
  EXPECT_EQ(stats.group_metrics[1].packets_in, 32);
  EXPECT_EQ(stats.group_metrics[1].packets_out, 32);
  EXPECT_EQ(stats.group_metrics[2].packets_in, 32);
  EXPECT_EQ(stats.group_metrics[2].bytes_in, 32 * 8);
  EXPECT_GT(stats.group_metrics[1].total_seconds, 0.0);
}

TEST(Runner, AbortedRunStillReportsConsistentMetrics) {
  struct Exploder : Filter {
    void process(FilterContext& ctx) override {
      ctx.read();
      throw std::runtime_error("boom");
    }
  };
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(1000); }, 1, 0});
  groups.push_back({"exploder", [] { return std::make_unique<Exploder>(); }, 1, 1});
  PipelineRunner runner(std::move(groups), /*stream_capacity=*/2);
  EXPECT_THROW(runner.run(), std::runtime_error);
  // The throw happens after joins; counters were already harvested into the
  // stats object the runner discards — the invariant under test is simply
  // that teardown neither deadlocks nor trips TSan/ASan on the counters.
}

TEST(Runner, InitFinalizeCalledOncePerCopy) {
  struct Probe : Filter {
    explicit Probe(std::atomic<int>* inits, std::atomic<int>* finals)
        : inits_(inits), finals_(finals) {}
    void init(FilterContext&) override { ++*inits_; }
    void process(FilterContext& ctx) override {
      while (ctx.read()) {
      }
    }
    void finalize(FilterContext&) override { ++*finals_; }
    std::atomic<int>* inits_;
    std::atomic<int>* finals_;
  };
  std::atomic<int> inits{0};
  std::atomic<int> finals{0};
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"source", [] { return std::make_unique<CountingSource>(4); }, 1, 0});
  groups.push_back({"probe", [&] { return std::make_unique<Probe>(&inits, &finals); }, 3, 1});
  PipelineRunner runner(std::move(groups));
  runner.run();
  EXPECT_EQ(inits.load(), 3);
  EXPECT_EQ(finals.load(), 3);
}

}  // namespace
}  // namespace cgp::dc
