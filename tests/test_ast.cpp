// AST utilities: deep clone, printer round-trips, type helpers.
#include <gtest/gtest.h>

#include "ast/ast.h"
#include "parser/parser.h"

namespace cgp {
namespace {

std::unique_ptr<Program> parse_ok(std::string_view source) {
  DiagnosticEngine diags;
  auto program = Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return program;
}

TEST(Type, EqualityAndPrinting) {
  EXPECT_TRUE(same_type(Type::primitive(PrimKind::Int),
                        Type::primitive(PrimKind::Int)));
  EXPECT_FALSE(same_type(Type::primitive(PrimKind::Int),
                         Type::primitive(PrimKind::Long)));
  EXPECT_TRUE(same_type(Type::array_of(Type::class_type("A")),
                        Type::array_of(Type::class_type("A"))));
  EXPECT_FALSE(same_type(Type::array_of(Type::class_type("A")),
                         Type::class_type("A")));
  EXPECT_EQ(Type::rectdomain(2)->to_string(), "Rectdomain<2>");
  EXPECT_EQ(Type::array_of(Type::primitive(PrimKind::Float))->to_string(),
            "float[]");
}

TEST(Type, PredicateCoverage) {
  TypePtr f = Type::primitive(PrimKind::Float);
  EXPECT_TRUE(f->is_numeric());
  EXPECT_TRUE(f->is_floating());
  EXPECT_FALSE(f->is_integral());
  TypePtr b = Type::primitive(PrimKind::Byte);
  EXPECT_TRUE(b->is_integral());
  EXPECT_TRUE(Type::class_type("X")->is_reference());
  EXPECT_TRUE(Type::null_type()->is_reference());
  EXPECT_FALSE(Type::rectdomain(1)->is_reference());
}

TEST(Type, PrimSizes) {
  EXPECT_EQ(prim_size_bytes(PrimKind::Int), 4u);
  EXPECT_EQ(prim_size_bytes(PrimKind::Long), 8u);
  EXPECT_EQ(prim_size_bytes(PrimKind::Float), 4u);
  EXPECT_EQ(prim_size_bytes(PrimKind::Double), 8u);
  EXPECT_EQ(prim_size_bytes(PrimKind::Byte), 1u);
  EXPECT_EQ(prim_size_bytes(PrimKind::Boolean), 1u);
}

TEST(Clone, DeepCopyIsIndependent) {
  auto program = parse_ok(R"(
    class A {
      void f(int n, double[] xs) {
        foreach (i in [0 : n - 1]) {
          if (xs[i] > 0.5) {
            xs[i] = xs[i] * 2.0 + 1.0;
          }
        }
      }
    }
  )");
  const Stmt& original = *program->classes[0]->methods[0]->body->statements[0];
  StmtPtr copy = clone_stmt(original);
  EXPECT_EQ(to_source(original), to_source(*copy));
  // Mutate the copy: the original must be untouched.
  auto& fe = static_cast<ForeachStmt&>(*copy);
  fe.var = "renamed";
  EXPECT_NE(to_source(original), to_source(*copy));
}

TEST(Clone, AllExpressionKinds) {
  auto program = parse_ok(R"(
    class B { int v; B(int x) { v = x; } }
    class A {
      int g(int x) { return x; }
      void f(int a, int[] xs, boolean c) {
        int e1 = a + 2 * 3 - 1;
        int e2 = -a;
        boolean e3 = !c && a > 1 || a < -4;
        int e4 = c ? a : g(a);
        B e5 = new B(xs[a]);
        int[] e6 = new int[a];
        Rectdomain<1> e7 = [0 : a - 1];
        int e8 = e5.v;
        a = a + 1;
        a += 2;
        a++;
      }
    }
  )");
  const auto& body = *program->classes[1]->methods[1]->body;
  for (const StmtPtr& s : body.statements) {
    StmtPtr copy = clone_stmt(*s);
    EXPECT_EQ(to_source(*s), to_source(*copy));
  }
}

TEST(Printer, RoundTripStability) {
  const char* sources[] = {
      "class A { void f() { while (true) { break; } } }",
      "class A { int f(int n) { for (int i = 0; i < n; i++) { continue; } return n; } }",
      "class A { void f(double d) { double x = d / 2.0 % 3.0; } }",
      "interface I { int size(); } class A implements I { int size() { return 0; } }",
      "class A { void f() { PipelinedLoop (p in [0 : runtime_define_n - 1]) { int x = p; } } }",
  };
  for (const char* source : sources) {
    auto first = parse_ok(source);
    std::string printed = to_source(*first);
    auto second = parse_ok(printed);
    EXPECT_EQ(to_source(*second), printed) << source;
  }
}

TEST(Printer, OperatorSpellings) {
  EXPECT_STREQ(binary_op_spelling(BinaryOp::Mod), "%");
  EXPECT_STREQ(binary_op_spelling(BinaryOp::Le), "<=");
  EXPECT_STREQ(assign_op_spelling(AssignOp::MulAssign), "*=");
  EXPECT_STREQ(unary_op_spelling(UnaryOp::Not), "!");
  EXPECT_TRUE(is_comparison(BinaryOp::Ne));
  EXPECT_FALSE(is_comparison(BinaryOp::Add));
  EXPECT_TRUE(is_logical(BinaryOp::And));
}

TEST(Printer, FloatLiteralsKeepDecimalPoint) {
  auto program = parse_ok("class A { void f() { double x = 2.0; } }");
  std::string printed = to_source(*program);
  EXPECT_NE(printed.find("2.0"), std::string::npos) << printed;
  // Must re-parse as a float literal, not an int.
  auto reparsed = parse_ok(printed);
  EXPECT_EQ(to_source(*reparsed), printed);
}

}  // namespace
}  // namespace cgp
