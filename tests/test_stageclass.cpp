// Stage-classification tests (ROADMAP item 1): which filters tolerate
// transparent replication. Covers the three verdict families — carried
// scalars (sequential), reduction replicas (parallel), pure maps
// (parallel) — plus the conservative alias/call fallbacks.
#include <gtest/gtest.h>

#include "analysis/stage_class.h"
#include "apps/app_configs.h"
#include "parser/parser.h"

namespace cgp {
namespace {

struct Classified {
  std::unique_ptr<Program> program;  // owns the AST the model points into
  PipelineModel model;
  PipelineClassification classification;
};

Classified classify(std::string_view source) {
  Classified out;
  DiagnosticEngine diags;
  out.program = Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  out.model = build_pipeline_model(*out.program, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  out.classification = classify_filters(out.model);
  EXPECT_EQ(out.classification.filters.size(), out.model.filters.size());
  return out;
}

constexpr const char* kPrologue = R"dialect(
interface Reducinterface { }

class App {
  void main() {
    int n = runtime_define_num_items;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) {
      data[i] = i * 0.5;
    }
)dialect";

TEST(StageClass, CarriedScalarIsSequential) {
  // `carry` is declared before the loop and assigned every packet without
  // a Reduce interface: replicating its filter would race the updates.
  std::string source = std::string(kPrologue) + R"dialect(
    double carry = 0.0;
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = data[i] * data[i];
      }
      foreach (j in [0 : psize - 1]) {
        carry = carry + sq[j];
      }
    }
    double result = carry;
  }
}
)dialect";
  Classified c = classify(source);
  ASSERT_EQ(c.classification.filters.size(), 3u);
  EXPECT_TRUE(c.classification.filters[0].parallel());  // base + sq decls
  EXPECT_TRUE(c.classification.filters[1].parallel());  // writes sq only
  const FilterClassification& acc = c.classification.filters[2];
  EXPECT_EQ(acc.cls, StageClass::kSequential);
  EXPECT_TRUE(acc.carried_writes.count("carry")) << acc.reason;
  EXPECT_NE(acc.reason.find("carries"), std::string::npos) << acc.reason;
}

TEST(StageClass, ReductionReplicaIsParallel) {
  // The tiny app's accumulator implements Reducinterface: the runtime
  // replicates it per copy and merges at end of stream, so the updating
  // filter stays parallel.
  apps::AppConfig config = apps::tiny_config(64, 4);
  Classified c = classify(config.source);
  ASSERT_EQ(c.classification.filters.size(), 3u);
  for (const FilterClassification& f : c.classification.filters) {
    EXPECT_TRUE(f.parallel()) << f.reason;
    EXPECT_TRUE(f.carried_writes.empty()) << f.reason;
  }
  const FilterClassification& acc = c.classification.filters[2];
  EXPECT_TRUE(acc.reduction_writes.count("acc")) << acc.reason;
  EXPECT_NE(acc.reason.find("reductions"), std::string::npos) << acc.reason;
  std::vector<char> flags = c.classification.parallel_flags();
  EXPECT_EQ(flags, (std::vector<char>{1, 1, 1}));
}

TEST(StageClass, PureMapIsParallel) {
  // Every mutated location is declared inside the loop body (per-packet):
  // copies touch disjoint state.
  std::string source = std::string(kPrologue) + R"dialect(
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = data[i] * 2.0;
      }
      double[] shifted = new double[psize];
      foreach (j in [0 : psize - 1]) {
        shifted[j] = sq[j] + 1.0;
      }
    }
  }
}
)dialect";
  Classified c = classify(source);
  ASSERT_GE(c.classification.filters.size(), 2u);
  for (const FilterClassification& f : c.classification.filters) {
    EXPECT_TRUE(f.parallel()) << f.reason;
    EXPECT_NE(f.reason.find("stateless"), std::string::npos) << f.reason;
  }
}

TEST(StageClass, WriteThroughAliasCarriesTheAliasedCollection) {
  // `Box b = boxes[j]` binds a reference to a pre-loop object; a write
  // through b mutates loop-carried state and must be attributed to
  // `boxes`, not to the loop-local name.
  std::string source = R"dialect(
interface Reducinterface { }

class Box {
  double v;
}

class App {
  void main() {
    int n = runtime_define_num_items;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    Box[] boxes = new Box[n];
    foreach (i in [0 : n - 1]) {
      Box b = new Box();
      b.v = i * 0.5;
      boxes[i] = b;
    }
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = base * 1.0;
      }
      foreach (j in [0 : psize - 1]) {
        Box b = boxes[base + j];
        b.v = sq[j];
      }
    }
  }
}
)dialect";
  Classified c = classify(source);
  ASSERT_EQ(c.classification.filters.size(), 3u);
  const FilterClassification& writer = c.classification.filters[2];
  EXPECT_EQ(writer.cls, StageClass::kSequential);
  EXPECT_TRUE(writer.carried_writes.count("boxes")) << writer.reason;
}

TEST(StageClass, UnboundedCallForcesSequential) {
  // The active-pixels projection filter calls a same-class helper
  // (projectPix); the classifier cannot bound its effects and must fall
  // back to sequential.
  apps::AppConfig config = apps::isosurface_active_pixels_config(false);
  Classified c = classify(config.source);
  ASSERT_EQ(c.classification.filters.size(), 7u);
  EXPECT_EQ(c.classification.filters[4].cls, StageClass::kSequential);
  EXPECT_NE(c.classification.filters[4].reason.find("unbounded"),
            std::string::npos)
      << c.classification.filters[4].reason;
  // The surrounding filters stay parallel; the final z-buffer update is a
  // reduction.
  EXPECT_TRUE(c.classification.filters[0].parallel());
  EXPECT_TRUE(c.classification.filters[6].parallel());
  EXPECT_TRUE(c.classification.filters[6].reduction_writes.count("zbuf"));
}

TEST(StageClass, AllFourAppsClassify) {
  // Regression net over the evaluation applications: reduction-updating
  // tails are parallel, and only the active-pixels helper-call filter is
  // sequential anywhere.
  struct Case {
    apps::AppConfig config;
    int expected_sequential;
  };
  const Case cases[] = {
      {apps::isosurface_zbuffer_config(false), 0},
      {apps::isosurface_active_pixels_config(false), 1},
      {apps::knn_config(3), 0},
      {apps::vmscope_config(false), 0},
  };
  for (const Case& test_case : cases) {
    Classified c = classify(test_case.config.source);
    int sequential = 0;
    for (const FilterClassification& f : c.classification.filters) {
      if (!f.parallel()) ++sequential;
    }
    EXPECT_EQ(sequential, test_case.expected_sequential)
        << test_case.config.name << "\n"
        << c.classification.to_string();
    EXPECT_TRUE(c.classification.filters.back().parallel())
        << test_case.config.name;
  }
}

}  // namespace
}  // namespace cgp
