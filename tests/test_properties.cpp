// Property-based tests (parameterized sweeps) over the compiler's core
// invariants:
//   * SymPoly ring axioms on random polynomials;
//   * §4.2's boundary-skip invariant: ReqComm computed through a boundary
//     equals ReqComm computed across merged segments, on generated
//     programs;
//   * DP optimality vs brute force across (n, m) grids;
//   * codec round-trips across element counts and section shapes;
//   * end-to-end result equality across all placements x widths.
#include <gtest/gtest.h>

#include "analysis/gencons.h"
#include "apps/app_configs.h"
#include "codegen/interp.h"
#include "codegen/packing.h"
#include "decomp/decompose.h"
#include "driver/compiler.h"
#include "parser/parser.h"
#include "sema/sema.h"
#include "support/rng.h"

namespace cgp {
namespace {

// ---------------------------------------------------------------------------
// SymPoly ring axioms
// ---------------------------------------------------------------------------

class SymPolyProperty : public ::testing::TestWithParam<std::uint64_t> {};

SymPoly random_poly(Rng& rng, int depth = 0) {
  switch (rng.next_below(depth > 2 ? 2 : 5)) {
    case 0:
      return SymPoly(rng.next_int(-9, 9));
    case 1: {
      const char* symbols[] = {"x", "y", "z", "n"};
      return SymPoly::symbol(symbols[rng.next_below(4)]);
    }
    case 2:
      return random_poly(rng, depth + 1) + random_poly(rng, depth + 1);
    case 3:
      return random_poly(rng, depth + 1) - random_poly(rng, depth + 1);
    default:
      return random_poly(rng, depth + 1) * random_poly(rng, depth + 1);
  }
}

TEST_P(SymPolyProperty, RingAxiomsAndEvalHomomorphism) {
  Rng rng(GetParam());
  SymPoly a = random_poly(rng);
  SymPoly b = random_poly(rng);
  SymPoly c = random_poly(rng);

  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_EQ(a + SymPoly(0), a);
  EXPECT_EQ(a * SymPoly(1), a);

  // Evaluation is a ring homomorphism.
  std::map<std::string, std::int64_t> env = {
      {"x", rng.next_int(-5, 5)},
      {"y", rng.next_int(-5, 5)},
      {"z", rng.next_int(-5, 5)},
      {"n", rng.next_int(-5, 5)},
  };
  auto ev = [&](const SymPoly& p) { return *p.evaluate(env); };
  EXPECT_EQ(ev(a + b), ev(a) + ev(b));
  EXPECT_EQ(ev(a * b), ev(a) * ev(b));
  EXPECT_EQ(ev(a - c), ev(a) - ev(c));

  // Substitution commutes with evaluation.
  SymPoly substituted = a.substitute("x", b);
  std::map<std::string, std::int64_t> env2 = env;
  env2["x"] = ev(b);
  EXPECT_EQ(*substituted.evaluate(env), *a.evaluate(env2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymPolyProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// §4.2 boundary-skip invariant on generated programs
// ---------------------------------------------------------------------------

class ReqCommSkipProperty : public ::testing::TestWithParam<std::uint64_t> {};

/// Generates a straight-line sequence of foreach stages with random
/// producer/consumer wiring over a pool of arrays.
std::string random_stage_program(Rng& rng, int stages) {
  std::string body;
  int n_arrays = 3 + static_cast<int>(rng.next_below(3));
  for (int a = 0; a < n_arrays; ++a) {
    body += "    double[] v" + std::to_string(a) + " = new double[n];\n";
  }
  for (int s = 0; s < stages; ++s) {
    int dst = static_cast<int>(rng.next_below(n_arrays));
    int src1 = static_cast<int>(rng.next_below(n_arrays));
    int src2 = static_cast<int>(rng.next_below(n_arrays));
    body += "    foreach (i in [0 : n - 1]) {\n";
    body += "      v" + std::to_string(dst) + "[i] = v" +
            std::to_string(src1) + "[i] * 1.5 + v" + std::to_string(src2) +
            "[i];\n";
    body += "    }\n";
  }
  return "class A {\n  void f(int n, double[] out) {\n" + body +
         "    foreach (i in [0 : n - 1]) { out[i] = v0[i]; }\n  }\n}\n";
}

TEST_P(ReqCommSkipProperty, MergedSegmentsGiveSameReqComm) {
  Rng rng(GetParam());
  const int stages = 2 + static_cast<int>(rng.next_below(4));
  std::string source = random_stage_program(rng, stages);
  DiagnosticEngine diags;
  auto program = Parser::parse(source, diags);
  Sema sema(*program, diags);
  SemaResult sr = sema.run();
  ASSERT_TRUE(sr.ok) << diags.render() << "\n" << source;

  const MethodDecl* method = sr.registry.find("A")->find_method("f");
  std::vector<const Stmt*> stmts;
  for (const StmtPtr& s : method->body->statements) stmts.push_back(s.get());

  GenConsAnalyzer analyzer(sr.registry, diags);
  // Final needs: `out` whole.
  ValueSet final_needs;
  final_needs.add(ValueId{"out", {kElemStep}},
                  ValueEntry{Type::primitive(PrimKind::Double), std::nullopt});

  // Propagate ReqComm per-statement (every boundary selected)...
  ValueSet per_stmt = final_needs;
  for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
    SegmentSets sets = analyzer.analyze_segment({*it});
    per_stmt = ValueSet::req_comm(per_stmt, sets.gen, sets.cons);
  }
  // ...and with a random subset of boundaries (merged segments).
  ValueSet merged = final_needs;
  std::size_t index = stmts.size();
  while (index > 0) {
    std::size_t take = 1 + rng.next_below(3);
    std::size_t begin = index > take ? index - take : 0;
    std::vector<const Stmt*> segment(stmts.begin() +
                                         static_cast<std::ptrdiff_t>(begin),
                                     stmts.begin() +
                                         static_cast<std::ptrdiff_t>(index));
    SegmentSets sets = analyzer.analyze_segment(segment);
    merged = ValueSet::req_comm(merged, sets.gen, sets.cons);
    index = begin;
  }
  EXPECT_EQ(per_stmt.to_string(), merged.to_string()) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReqCommSkipProperty,
                         ::testing::Range<std::uint64_t>(100, 140));

// ---------------------------------------------------------------------------
// DP optimality across (n, m)
// ---------------------------------------------------------------------------

class DpOptimality
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpOptimality, MatchesBruteForce) {
  auto [n_filters, stages] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n_filters * 131 + stages));
  for (int trial = 0; trial < 10; ++trial) {
    DecompositionInput input;
    for (int i = 0; i < n_filters; ++i) {
      input.task_ops.push_back(rng.next_double(1.0, 1e4));
      input.boundary_bytes.push_back(rng.next_double(1.0, 1e4));
    }
    input.input_bytes = rng.next_double(1.0, 1e4);
    input.source_io_ops = rng.next_double(0.0, 1e4);
    input.env = EnvironmentSpec::uniform(stages, rng.next_double(1e2, 1e4),
                                         rng.next_double(1e2, 1e4));
    DecompositionResult dp = decompose_dp(input);
    DecompositionResult brute =
        decompose_bruteforce(input, Objective::PerPacketLatency);
    EXPECT_NEAR(dp.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost));
    EXPECT_NEAR(decompose_dp_cost_only(input), dp.cost,
                1e-9 * std::max(1.0, dp.cost));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DpOptimality,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(2, 3, 4, 5)));

// ---------------------------------------------------------------------------
// Codec round-trips across shapes
// ---------------------------------------------------------------------------

class CodecProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodecProperty, RoundTripPreservesSectionContents) {
  const int n = GetParam();
  ClassRegistry registry;
  ClassInfo point;
  point.name = "P";
  point.fields = {FieldInfo{"a", Type::primitive(PrimKind::Float), 0},
                  FieldInfo{"b", Type::primitive(PrimKind::Int), 1},
                  FieldInfo{"c", Type::primitive(PrimKind::Double), 2}};
  registry.add(point);

  Rng rng(static_cast<std::uint64_t>(n) + 7);
  auto arr = std::make_shared<ArrayVal>();
  for (int i = 0; i < n; ++i) {
    auto obj = std::make_shared<Object>();
    obj->class_name = "P";
    obj->fields = {
        Value{static_cast<double>(static_cast<float>(rng.next_double()))},
        Value{rng.next_int(-1000, 1000)}, Value{rng.next_double()}};
    arr->elems.push_back(obj);
  }

  const std::int64_t lo = rng.next_int(0, n - 1);
  const std::int64_t hi = rng.next_int(lo, n - 1);
  ValueSet req;
  for (const char* field : {"a", "b", "c"}) {
    req.add(ValueId{"ps", {kElemStep, field}},
            ValueEntry{registry.find("P")->find_field(field)->type,
                       RectSection::dim1(SymPoly(lo), SymPoly(hi))});
  }
  req.add(ValueId{"count", {}}, ValueEntry{Type::primitive(PrimKind::Long), {}});

  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;
  sender.declare("ps", arr);
  sender.declare("count", Value{static_cast<std::int64_t>(n)});
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; }, buffer);

  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& out = std::get<std::shared_ptr<ArrayVal>>(receiver.get("ps"));
  ASSERT_EQ(out->base_index, lo);
  ASSERT_EQ(static_cast<std::int64_t>(out->elems.size()), hi - lo + 1);
  for (std::int64_t i = lo; i <= hi; ++i) {
    const auto& a = std::get<std::shared_ptr<Object>>(
        arr->elems[static_cast<std::size_t>(i)]);
    const auto& b = std::get<std::shared_ptr<Object>>(
        out->elems[static_cast<std::size_t>(i - lo)]);
    for (int f = 0; f < 3; ++f) {
      EXPECT_NEAR(as_double(a->fields[static_cast<std::size_t>(f)]),
                  as_double(b->fields[static_cast<std::size_t>(f)]), 1e-6)
          << "element " << i << " field " << f;
    }
  }
  EXPECT_EQ(as_int(receiver.get("count")), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecProperty,
                         ::testing::Values(1, 2, 7, 33, 256, 1000));

// ---------------------------------------------------------------------------
// End-to-end: all placements x widths preserve results (knn, small scale)
// ---------------------------------------------------------------------------

struct E2ECase {
  int width;
  int cut_a;  // last filter on stage 0
  int cut_b;  // last filter on stage <= 1
};

class PipelinePlacementProperty : public ::testing::TestWithParam<E2ECase> {};

TEST_P(PipelinePlacementProperty, KnnInvariantUnderPlacementAndWidth) {
  const E2ECase param = GetParam();
  static apps::AppConfig config = [] {
    apps::AppConfig c = apps::knn_config(5);
    // Shrink for the sweep.
    c.runtime_constants["runtime_define_num_points"] = 4096;
    c.runtime_constants["runtime_define_num_packets"] = 8;
    c.size_bindings["npoints"] = 4096;
    c.size_bindings["psize"] = 512;
    c.size_bindings["len(pts)"] = 4096;
    c.size_bindings["len(dists)"] = 512;
    c.n_packets = 8;
    return c;
  }();
  static const double expected = [] {
    DiagnosticEngine diags;
    auto program = Parser::parse(config.source, diags);
    Sema sema(*program, diags);
    SemaResult sr = sema.run();
    Interpreter interp(sr.registry, config.runtime_constants);
    Env env = interp.run("Knn", "main");
    return as_double(env.get("dsum"));
  }();

  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(param.width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult result = compile_pipeline(config.source, options);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  const int n_filters = static_cast<int>(result.model.filters.size());
  Placement placement;
  for (int f = 0; f < n_filters; ++f) {
    int stage = f <= param.cut_a ? 0 : (f <= param.cut_b ? 1 : 2);
    placement.unit_of_filter.push_back(stage);
  }
  PipelineRunResult run =
      result.make_runner(placement, options.env).run();
  ASSERT_TRUE(run.finals.count("dsum"));
  EXPECT_NEAR(as_double(run.finals.at("dsum")), expected,
              1e-6 * std::max(1.0, std::abs(expected)))
      << placement.to_string() << " width " << param.width;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePlacementProperty,
    ::testing::Values(E2ECase{1, -1, -1}, E2ECase{1, -1, 0}, E2ECase{1, 0, 0},
                      E2ECase{1, 0, 1}, E2ECase{1, 1, 1}, E2ECase{1, 1, 2},
                      E2ECase{2, 0, 1}, E2ECase{2, -1, 2}, E2ECase{4, 0, 0},
                      E2ECase{4, 1, 1}));

}  // namespace
}  // namespace cgp
