// Chaos soak for replica-aware exactly-once recovery (docs/ROBUSTNESS.md):
// seeded random kill/resume/fault storms over replicated, checkpointed
// pipelines, compared against the fault-free oracle. Each scenario draws
// its shape (replica counts, batch size, checkpoint interval, storm
// schedule) from a deterministic RNG so every failure is replayable from
// its seed, and the whole suite is re-seedable via the CHAOS_SOAK_SEED
// environment variable (the CI chaos-soak job runs three distinct seeds
// under TSan, repeated until-fail).
#include <gtest/gtest.h>
#include <signal.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/checkpoint.h"
#include "datacutter/runner.h"
#include "support/faultinject.h"
#include "support/rng.h"

namespace cgp::dc {
namespace {

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("CHAOS_SOAK_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260808ull;
}

// --- The soak pipeline: integer packets whose delivered multiset is an
// --- exact, order-independent fingerprint of the run.

class SoakSource : public Filter {
 public:
  explicit SoakSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
    }
  }

 private:
  int n_;
};

// Stateful middle stage: forwards v+1 and carries a per-copy running sum
// that only snapshot/restore keeps exact across restarts.
class SoakAdder : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      carried_ += v;
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(carried_);
    return true;
  }
  void restore_state(Buffer& in) override {
    carried_ = in.read<std::int64_t>();
  }

 private:
  std::int64_t carried_ = 0;
};

struct SoakState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;
};

// Stateful sink: the delivered multiset lives inside the filter (published
// to the shared state only at finalize) so exactness depends entirely on
// snapshot/restore + replay dedup doing their jobs.
class SoakSink : public Filter {
 public:
  explicit SoakSink(std::shared_ptr<SoakState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) local_.insert(b->read<std::int64_t>());
  }
  void finalize(FilterContext&) override {
    std::lock_guard lock(state_->mutex);
    for (const std::int64_t v : local_) state_->values.insert(v);
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(static_cast<std::int64_t>(local_.size()));
    for (const std::int64_t v : local_) out.write<std::int64_t>(v);
    return true;
  }
  void restore_state(Buffer& in) override {
    const std::int64_t n = in.read<std::int64_t>();
    local_.clear();
    for (std::int64_t i = 0; i < n; ++i)
      local_.insert(in.read<std::int64_t>());
  }

 private:
  std::shared_ptr<SoakState> state_;
  std::multiset<std::int64_t> local_;
};

struct SoakShape {
  int packets = 64;
  int src_copies = 1;
  int mid_copies = 1;
  int sink_copies = 1;
  std::size_t interval = 4;
  std::size_t batch = 1;
  std::size_t capacity = 8;
};

std::vector<FilterGroup> soak_groups(const SoakShape& shape,
                                     std::shared_ptr<SoakState> state) {
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"src", [n = shape.packets] { return std::make_unique<SoakSource>(n); },
       shape.src_copies, 0});
  groups.push_back({"mid", [] { return std::make_unique<SoakAdder>(); },
                    shape.mid_copies, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<SoakSink>(state); },
       shape.sink_copies, 2});
  return groups;
}

RunnerConfig soak_config(const SoakShape& shape) {
  RunnerConfig config;
  config.stream_capacity = shape.capacity;
  config.batch_size = shape.batch;
  config.checkpoint_interval = shape.interval;
  return config;
}

// The fault-free oracle: every source value shifted once by the adder.
std::multiset<std::int64_t> oracle(int packets) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < packets; ++i) out.insert(i + 1);
  return out;
}

SoakShape draw_shape(Rng& rng) {
  SoakShape shape;
  shape.packets = 48 + static_cast<int>(rng.next_below(5)) * 16;  // 48..112
  const int copy_choices[] = {1, 2, 4};
  shape.src_copies = copy_choices[rng.next_below(3)];
  shape.mid_copies = copy_choices[rng.next_below(3)];
  shape.sink_copies = copy_choices[rng.next_below(2)];  // 1 or 2
  shape.interval = 2 + static_cast<std::size_t>(rng.next_below(7));  // 2..8
  shape.batch = rng.next_below(2) == 0 ? 1 : 4;
  shape.capacity = rng.next_below(2) == 0 ? 4 : 16;
  return shape;
}

std::string shape_str(const SoakShape& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "packets=%d copies=%d/%d/%d interval=%zu batch=%zu cap=%zu",
                s.packets, s.src_copies, s.mid_copies, s.sink_copies,
                s.interval, s.batch, s.capacity);
  return buf;
}

FaultPolicy soak_policy(int max_retries = 3) {
  FaultPolicy policy;
  policy.action = FaultAction::kRestartCopy;
  policy.max_retries = max_retries;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  return policy;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// ---------------------------------------------------------------------------
// Storm 1: transient fault storms (throws on data packets and on cut
// markers, every stage, random shapes) — the delivered multiset must equal
// the oracle on every drawn shape.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, TransientFaultStormsKeepDeliveryExact) {
  Rng rng(soak_seed() ^ 0xf157ull);
  for (int round = 0; round < 6; ++round) {
    const SoakShape shape = draw_shape(rng);
    auto state = std::make_shared<SoakState>();
    PipelineRunner runner(soak_groups(shape, state), soak_config(shape),
                          soak_policy());
    // Transient storms: per-packet throws on the stateful stages plus a
    // marker-aligned throw every other round (first attempt only, so the
    // restarted instance gets through).
    std::string plan = "mid:throw@3,sink:throw@5";
    if (round % 2 == 0) plan += ",mid:throw@mark1";
    const support::FaultPlan parsed =
        support::parse_fault_plan(plan, rng.next_u64());
    runner.set_packet_hook(support::make_fault_hook(parsed));
    runner.set_marker_hook(support::make_marker_fault_hook(parsed));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok())
        << shape_str(shape) << ": " << outcome.stats.error;
    EXPECT_EQ(state->values, oracle(shape.packets)) << shape_str(shape);
  }
}

// ---------------------------------------------------------------------------
// Storm 2: kill/resume storms — persistent (refiring) faults repeatedly
// kill whole stages mid-run; each casualty leaves its last usable cut on
// disk and the next attempt resumes from it. The final, fault-free attempt
// must deliver exactly the oracle multiset, whatever trail of corpses and
// partial cuts the storm left behind.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, KillResumeStormsConvergeToTheOracle) {
  Rng rng(soak_seed() ^ 0x4c11ull);
  for (int round = 0; round < 4; ++round) {
    const SoakShape shape = draw_shape(rng);
    const std::string path = "cgp_chaos_soak_" + std::to_string(round) +
                             "_" + std::to_string(soak_seed()) + ".json";
    std::remove(path.c_str());
    const int kills = 1 + static_cast<int>(rng.next_below(3));  // 1..3
    std::multiset<std::int64_t> final_values;
    bool completed = false;
    for (int attempt = 0; attempt <= kills && !completed; ++attempt) {
      auto state = std::make_shared<SoakState>();
      RunnerConfig config = soak_config(shape);
      config.checkpoint_path = path;
      std::optional<RunCheckpoint> cut;
      if (file_exists(path)) {
        cut = load_checkpoint(path);
        config.resume = &*cut;
      }
      PipelineRunner runner(soak_groups(shape, state), config,
                            soak_policy(/*max_retries=*/1));
      if (attempt < kills) {
        // A persistent fault every restarted instance re-hits: with the
        // retry budget at 1 it kills every copy of the stage that reaches
        // the ordinal, usually tearing the run down mid-flight.
        const char* stage = rng.next_below(2) == 0 ? "mid" : "sink";
        const std::string plan = std::string(stage) + ":throw@" +
                                 std::to_string(1 + rng.next_below(4)) + "!";
        runner.set_packet_hook(
            support::make_fault_hook(support::parse_fault_plan(plan)));
      }
      RunOutcome outcome = runner.run_supervised();
      if (attempt >= kills) {
        ASSERT_TRUE(outcome.ok())
            << shape_str(shape) << ": " << outcome.stats.error;
      }
      // A killed attempt's partial delivery is discarded; only a clean,
      // fault-free completion is trusted (a run that limped to EOS with a
      // dead copy may legitimately have dropped its in-flight packet).
      if (outcome.ok() && outcome.stats.faults.empty()) {
        final_values = state->values;
        completed = true;
      }
    }
    std::remove(path.c_str());
    ASSERT_TRUE(completed) << shape_str(shape);
    EXPECT_EQ(final_values, oracle(shape.packets)) << shape_str(shape);
  }
}

// ---------------------------------------------------------------------------
// Storm 3: probabilistic soak — low-probability throws sprinkled across
// every copy of every stage, generous retry budget, random shapes.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, ProbabilisticFaultSoakKeepsDeliveryExact) {
  Rng rng(soak_seed() ^ 0x9b0bull);
  for (int round = 0; round < 4; ++round) {
    const SoakShape shape = draw_shape(rng);
    auto state = std::make_shared<SoakState>();
    PipelineRunner runner(soak_groups(shape, state), soak_config(shape),
                          soak_policy(/*max_retries=*/10));
    runner.set_packet_hook(support::make_fault_hook(support::parse_fault_plan(
        "src:throw@~0.02,mid:throw@~0.03,sink:throw@~0.03", rng.next_u64())));
    RunOutcome outcome = runner.run_supervised();
    ASSERT_TRUE(outcome.ok())
        << shape_str(shape) << ": " << outcome.stats.error;
    EXPECT_EQ(state->values, oracle(shape.packets)) << shape_str(shape);
  }
}

// ---------------------------------------------------------------------------
// Storm 4: torn checkpoint mid-storm — resuming from a truncated file must
// fail loudly, and a fresh (non-resumed) run still converges.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, TornCheckpointFailsLoudlyAndFreshRunConverges) {
  Rng rng(soak_seed() ^ 0x70a2ull);
  SoakShape shape = draw_shape(rng);
  shape.mid_copies = 2;  // keep the replicated path in play
  const std::string path = "cgp_chaos_soak_torn.json";
  std::remove(path.c_str());
  // Kill a run mid-flight so a real cut lands on disk.
  {
    auto state = std::make_shared<SoakState>();
    RunnerConfig config = soak_config(shape);
    config.checkpoint_path = path;
    PipelineRunner runner(soak_groups(shape, state), config,
                          soak_policy(/*max_retries=*/1));
    runner.set_packet_hook(
        support::make_fault_hook(support::parse_fault_plan("sink:throw@2!")));
    (void)runner.run_supervised();
  }
  ASSERT_TRUE(file_exists(path));
  // Tear the file the way a crashed host without the fsync dance would.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() * 2 / 3);
  }
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
  // The operator falls back to a fresh run; it must still be exact.
  auto state = std::make_shared<SoakState>();
  PipelineRunner runner(soak_groups(shape, state), soak_config(shape),
                        soak_policy());
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, oracle(shape.packets));
}

// ---------------------------------------------------------------------------
// Storm 5: worker-process kill storm on the proc backend — a sniper thread
// SIGKILLs a randomly chosen worker process mid-run (no unwind, no signal
// handler: the frame it was sending is torn off mid-batch), the supervisor's
// reaper detects the silent death and aborts, and the next attempt resumes
// from the last consistent cut on disk. The final clean completion must
// deliver exactly the oracle multiset: nothing the dead worker had in
// flight may be lost or double-counted.
// ---------------------------------------------------------------------------

/// SoakAdder with a per-packet stall, so runs are long enough that a
/// SIGKILL lands mid-stream rather than racing end-of-stream.
class SlowSoakAdder : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      const std::int64_t v = b->read<std::int64_t>();
      carried_ += v;
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(carried_);
    return true;
  }
  void restore_state(Buffer& in) override {
    carried_ = in.read<std::int64_t>();
  }

 private:
  std::int64_t carried_ = 0;
};

TEST(ChaosSoak, ProcWorkerKillStormIsExactlyOnceAfterResume) {
  Rng rng(soak_seed() ^ 0x51a9ull);
  for (int round = 0; round < 3; ++round) {
    SoakShape shape = draw_shape(rng);
    shape.packets = 96 + static_cast<int>(rng.next_below(3)) * 32;
    shape.interval = 2 + static_cast<std::size_t>(rng.next_below(3));
    const std::string path = "cgp_chaos_proc_kill_" + std::to_string(round) +
                             "_" + std::to_string(soak_seed()) + ".json";
    std::remove(path.c_str());
    const int kills = 1 + static_cast<int>(rng.next_below(2));  // 1..2
    int casualties = 0;
    std::multiset<std::int64_t> final_values;
    bool completed = false;
    for (int attempt = 0; attempt < kills + 6 && !completed; ++attempt) {
      auto state = std::make_shared<SoakState>();
      std::vector<FilterGroup> groups;
      groups.push_back({"src",
                        [n = shape.packets] {
                          return std::make_unique<SoakSource>(n);
                        },
                        shape.src_copies, 0});
      groups.push_back({"mid", [] { return std::make_unique<SlowSoakAdder>(); },
                        shape.mid_copies, 1});
      groups.push_back(
          {"sink", [state] { return std::make_unique<SoakSink>(state); },
           shape.sink_copies, 2});
      RunnerConfig config = soak_config(shape);
      config.backend = TransportBackend::kProc;
      config.checkpoint_path = path;
      std::optional<RunCheckpoint> cut;
      if (file_exists(path)) {
        cut = load_checkpoint(path);
        config.resume = &*cut;
      }
      PipelineRunner runner(std::move(groups), config, soak_policy());
      // The sniper: armed on the storm attempts, targeting one of the two
      // worker groups (src or mid — the sink lives in the supervisor). It
      // is spawned from the process hook only once the LAST worker has
      // forked, so the supervisor is still single-threaded at every fork
      // (the multi-process backends rely on that), then fires as soon as a
      // consistent cut has landed on disk.
      // Stay armed until the storm has claimed its quota: a sniper can
      // miss (its victim finished and exited before the shot), in which
      // case the attempt completed cleanly, left a cut on disk, and the
      // next armed attempt fires near-instantly into live workers.
      const bool armed = casualties < kills;
      const std::size_t victim_gi = rng.next_below(2);
      std::mutex pid_mutex;
      std::array<long, 2> pids = {0, 0};
      std::atomic<bool> stop{false};
      std::thread sniper;
      if (armed) {
        runner.set_process_hook([&](std::size_t gi, long pid) {
          std::lock_guard lock(pid_mutex);
          if (gi < pids.size()) pids[gi] = pid;
          if (gi != 1) return;  // both workers forked: release the sniper
          sniper = std::thread([&] {
            while (!stop.load(std::memory_order_acquire)) {
              if (file_exists(path)) {
                long target, other;
                {
                  std::lock_guard pid_lock(pid_mutex);
                  target = pids[victim_gi];
                  other = pids[1 - victim_gi];
                }
                // If the drawn victim is already gone (ESRCH), shoot the
                // other worker instead of wasting the round.
                if (target <= 0 ||
                    ::kill(static_cast<pid_t>(target), SIGKILL) != 0) {
                  if (other > 0) ::kill(static_cast<pid_t>(other), SIGKILL);
                }
                return;
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          });
        });
      }
      RunOutcome outcome = runner.run_supervised();
      stop.store(true, std::memory_order_release);
      if (sniper.joinable()) sniper.join();
      if (armed && !outcome.ok()) ++casualties;
      // Only a clean, fault-free, unarmed completion is trusted; a killed
      // attempt's partial delivery is discarded along with its SoakState,
      // and an armed attempt that outran its sniper is retried.
      if (!armed && outcome.ok() && outcome.stats.faults.empty()) {
        final_values = state->values;
        completed = true;
      }
    }
    std::remove(path.c_str());
    ASSERT_TRUE(completed) << shape_str(shape);
    // The storm must actually have drawn blood: every round runs long
    // enough (per-packet stall in the adder) that at least one armed
    // attempt dies to the sniper instead of racing to end-of-stream.
    EXPECT_GE(casualties, 1) << shape_str(shape);
    EXPECT_EQ(final_values, oracle(shape.packets)) << shape_str(shape);
  }
}

}  // namespace
}  // namespace cgp::dc
