// Parser unit tests: declaration forms, statements, expressions, precedence,
// dialect extensions, error recovery, and print round-trips.
#include <gtest/gtest.h>

#include "parser/parser.h"

namespace cgp {
namespace {

std::unique_ptr<Program> parse_ok(std::string_view source) {
  DiagnosticEngine diags;
  auto program = Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return program;
}

TEST(Parser, EmptyProgram) {
  auto program = parse_ok("");
  EXPECT_TRUE(program->classes.empty());
  EXPECT_TRUE(program->interfaces.empty());
}

TEST(Parser, InterfaceDecl) {
  auto program = parse_ok("interface Reducinterface { }");
  ASSERT_EQ(program->interfaces.size(), 1u);
  EXPECT_EQ(program->interfaces[0]->name, "Reducinterface");
}

TEST(Parser, ClassWithFieldsAndImplements) {
  auto program = parse_ok(R"(
    interface I { }
    class A implements I {
      int x;
      float y, z;
    }
  )");
  ASSERT_EQ(program->classes.size(), 1u);
  const ClassDecl& cls = *program->classes[0];
  EXPECT_EQ(cls.implements.size(), 1u);
  ASSERT_EQ(cls.fields.size(), 3u);
  EXPECT_EQ(cls.fields[1]->name, "y");
  EXPECT_EQ(cls.fields[2]->name, "z");
  EXPECT_TRUE(cls.fields[2]->type->is_floating());
}

TEST(Parser, Constructor) {
  auto program = parse_ok(R"(
    class A {
      int x;
      A(int v) { x = v; }
    }
  )");
  const ClassDecl& cls = *program->classes[0];
  ASSERT_EQ(cls.methods.size(), 1u);
  EXPECT_EQ(cls.methods[0]->name, "A");
  EXPECT_EQ(cls.methods[0]->params.size(), 1u);
}

TEST(Parser, MethodWithArrayTypes) {
  auto program = parse_ok(R"(
    class A {
      float[] data;
      float get(int[] idx) { return data[idx[0]]; }
    }
  )");
  const MethodDecl& m = *program->classes[0]->methods[0];
  EXPECT_TRUE(m.params[0]->type->is_array());
  EXPECT_TRUE(m.return_type->is_floating());
}

TEST(Parser, RectdomainType) {
  auto program = parse_ok(R"(
    class A {
      void f() {
        Rectdomain<1> d = [0 : 9];
      }
    }
  )");
  const auto& body = program->classes[0]->methods[0]->body;
  ASSERT_EQ(body->statements.size(), 1u);
  const auto& decl = static_cast<const VarDeclStmt&>(*body->statements[0]);
  EXPECT_TRUE(decl.declared_type->is_rectdomain());
  EXPECT_EQ(decl.init->kind, NodeKind::RectdomainLit);
}

TEST(Parser, ForeachAndPipelinedLoop) {
  auto program = parse_ok(R"(
    class A {
      void f() {
        PipelinedLoop (p in [0 : runtime_define_num_packets - 1]) {
          foreach (i in [0 : 9]) {
            int x = i;
          }
        }
      }
    }
  )");
  const auto& body = program->classes[0]->methods[0]->body;
  ASSERT_EQ(body->statements[0]->kind, NodeKind::PipelinedLoopStmt);
  const auto& loop =
      static_cast<const PipelinedLoopStmt&>(*body->statements[0]);
  EXPECT_EQ(loop.var, "p");
  const auto& inner = static_cast<const BlockStmt&>(*loop.body);
  EXPECT_EQ(inner.statements[0]->kind, NodeKind::ForeachStmt);
}

TEST(Parser, RuntimeDefineVarRefFlag) {
  auto program = parse_ok(R"(
    class A {
      void f() {
        int n = runtime_define_count;
      }
    }
  )");
  const auto& decl = static_cast<const VarDeclStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  const auto& ref = static_cast<const VarRef&>(*decl.init);
  EXPECT_TRUE(ref.is_runtime_define);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto program = parse_ok("class A { int f() { return 1 + 2 * 3; } }");
  const auto& ret = static_cast<const ReturnStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  const auto& add = static_cast<const BinaryExpr&>(*ret.value);
  EXPECT_EQ(add.op, BinaryOp::Add);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceComparisonBeforeLogical) {
  auto program =
      parse_ok("class A { boolean f(int a) { return a < 3 && a > 1; } }");
  const auto& ret = static_cast<const ReturnStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*ret.value).op, BinaryOp::And);
}

TEST(Parser, AssignmentRightAssociative) {
  auto program = parse_ok("class A { void f(int a, int b) { a = b = 3; } }");
  const auto& stmt = static_cast<const ExprStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  const auto& outer = static_cast<const AssignExpr&>(*stmt.expr);
  EXPECT_EQ(outer.value->kind, NodeKind::Assign);
}

TEST(Parser, TernaryConditional) {
  auto program = parse_ok("class A { int f(int a) { return a > 0 ? a : -a; } }");
  const auto& ret = static_cast<const ReturnStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  EXPECT_EQ(ret.value->kind, NodeKind::Conditional);
}

TEST(Parser, NewObjectAndNewArray) {
  auto program = parse_ok(R"(
    class B { }
    class A {
      void f() {
        B b = new B();
        float[] xs = new float[10];
      }
    }
  )");
  const auto& stmts = program->classes[1]->methods[0]->body->statements;
  EXPECT_EQ(static_cast<const VarDeclStmt&>(*stmts[0]).init->kind,
            NodeKind::NewObject);
  EXPECT_EQ(static_cast<const VarDeclStmt&>(*stmts[1]).init->kind,
            NodeKind::NewArray);
}

TEST(Parser, MethodCallChains) {
  auto program = parse_ok(R"(
    class A {
      A self() { return this; }
      void f() {
        self().self().self();
      }
    }
  )");
  const auto& stmt = static_cast<const ExprStmt&>(
      *program->classes[0]->methods[1]->body->statements[0]);
  EXPECT_EQ(stmt.expr->kind, NodeKind::Call);
}

TEST(Parser, ForLoopClassic) {
  auto program = parse_ok(R"(
    class A {
      void f() {
        for (int i = 0; i < 10; i++) {
          int x = i;
        }
      }
    }
  )");
  const auto& loop = static_cast<const ForStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  EXPECT_NE(loop.init, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_NE(loop.step, nullptr);
}

TEST(Parser, WhileAndBreakContinue) {
  auto program = parse_ok(R"(
    class A {
      void f(int n) {
        while (n > 0) {
          n = n - 1;
          if (n == 3) { break; }
          if (n == 5) { continue; }
        }
      }
    }
  )");
  EXPECT_EQ(program->classes[0]->methods[0]->body->statements[0]->kind,
            NodeKind::WhileStmt);
}

TEST(Parser, ErrorRecoveryProducesMultipleErrors) {
  DiagnosticEngine diags;
  Parser::parse(R"(
    class A {
      void f() {
        int x = ;
        int y = 3;
        float z = @;
      }
    }
  )", diags);
  EXPECT_GE(diags.error_count(), 2u);
}

TEST(Parser, ErrorAtTopLevel) {
  DiagnosticEngine diags;
  auto program = Parser::parse("42", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(program->classes.empty());
}

TEST(Parser, InvalidAssignmentTarget) {
  DiagnosticEngine diags;
  Parser::parse("class A { void f() { 1 + 2 = 3; } }", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, PrintRoundTrip) {
  const char* source =
      "class A { void f(int n) { foreach (i in [0 : n - 1]) { int x = i * 2; } } }";
  auto program = parse_ok(source);
  std::string printed = to_source(*program);
  // Re-parse the printed form; it must parse cleanly to the same shape.
  auto reparsed = parse_ok(printed);
  EXPECT_EQ(to_source(*reparsed), printed);
}

TEST(Parser, RuntimeDefineDeclStatement) {
  auto program = parse_ok(R"(
    class A {
      void f() {
        runtime_define int blocking;
      }
    }
  )");
  const auto& decl = static_cast<const VarDeclStmt&>(
      *program->classes[0]->methods[0]->body->statements[0]);
  EXPECT_TRUE(decl.is_runtime_define);
}

}  // namespace
}  // namespace cgp
