// Loop fission tests (§4.1): boundary exposure inside foreach loops.
#include <gtest/gtest.h>

#include "analysis/fission.h"
#include "codegen/interp.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

struct Fixture {
  std::unique_ptr<Program> program;
  DiagnosticEngine diags;
  PipelinedLoopStmt* loop = nullptr;
};

Fixture prepare(std::string_view source) {
  Fixture f;
  f.program = Parser::parse(source, f.diags);
  Sema sema(*f.program, f.diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << f.diags.render();
  // find the pipelined loop
  for (auto& cls : f.program->classes) {
    for (auto& m : cls->methods) {
      if (!m->body) continue;
      for (StmtPtr& s : m->body->statements) {
        if (s->kind == NodeKind::PipelinedLoopStmt) {
          f.loop = static_cast<PipelinedLoopStmt*>(s.get());
        }
      }
    }
  }
  EXPECT_NE(f.loop, nullptr);
  return f;
}

int count_foreach(const Stmt& stmt) {
  if (stmt.kind == NodeKind::ForeachStmt) {
    const auto& fe = static_cast<const ForeachStmt&>(stmt);
    return 1 + count_foreach(*fe.body);
  }
  if (stmt.kind == NodeKind::Block) {
    int total = 0;
    for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements)
      total += count_foreach(*s);
    return total;
  }
  return 0;
}

/// Runs main() sequentially and returns a named scalar result.
double run_and_get(Program& program, const std::string& name) {
  DiagnosticEngine diags;
  Sema sema(program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  Interpreter interp(result.registry, {{"runtime_define_np", 2}});
  Env env = interp.run("A", "main");
  return as_double(env.get(name));
}

TEST(Fission, SplitsAtConditional) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double[] xs = new double[100];
        double[] ys = new double[100];
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (i in [0 : 99]) {
            double v = xs[i] * 2.0;
            if (v > 1.0) {
              ys[i] = v;
            }
            xs[i] = v + 1.0;
          }
        }
      }
    }
  )");
  FissionStats stats = fission_pipelined_body(*f.loop, f.diags);
  EXPECT_EQ(stats.loops_fissioned, 1);
  EXPECT_EQ(stats.pieces_created, 3);  // pre, conditional, post
  EXPECT_EQ(count_foreach(*f.loop->body), 3);
}

TEST(Fission, SplitsAtCall) {
  Fixture f = prepare(R"(
    class A {
      double g(double v) { return v * 3.0; }
      void main() {
        double[] xs = new double[10];
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (i in [0 : 9]) {
            double a = xs[i] + 1.0;
            double b = g(a);
            xs[i] = b;
          }
        }
      }
    }
  )");
  FissionStats stats = fission_pipelined_body(*f.loop, f.diags);
  EXPECT_EQ(stats.loops_fissioned, 1);
  EXPECT_GE(stats.pieces_created, 2);
}

TEST(Fission, NoSplitWhenNoBoundary) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double[] xs = new double[10];
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (i in [0 : 9]) {
            double v = xs[i];
            xs[i] = v * 2.0;
          }
        }
      }
    }
  )");
  FissionStats stats = fission_pipelined_body(*f.loop, f.diags);
  EXPECT_EQ(stats.loops_fissioned, 0);
  EXPECT_EQ(count_foreach(*f.loop->body), 1);
}

TEST(Fission, SingleStatementConditionalBodyNotSplit) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double[] xs = new double[10];
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (i in [0 : 9]) {
            if (xs[i] > 0.5) {
              xs[i] = 0.0;
            }
          }
        }
      }
    }
  )");
  FissionStats stats = fission_pipelined_body(*f.loop, f.diags);
  EXPECT_EQ(stats.loops_fissioned, 0);
}

TEST(Fission, PreservesSemanticsWithScalarExpansion) {
  const char* source = R"(
    class A {
      double g(double v) { return v * 0.5; }
      void main() {
        double[] xs = new double[64];
        foreach (i in [0 : 63]) { xs[i] = i * 0.25; }
        double checksum = 0.0;
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (i in [0 : 63]) {
            double t = xs[i] + 1.0;
            double u = g(t);
            xs[i] = u + t;
          }
        }
        foreach (i in [0 : 63]) { checksum = checksum + xs[i]; }
      }
    }
  )";
  // Oracle: run unfissioned.
  Fixture original = prepare(source);
  double expected = run_and_get(*original.program, "checksum");

  // Fission, re-check, run again: same result.
  Fixture fissioned = prepare(source);
  FissionStats stats = fission_pipelined_body(*fissioned.loop, fissioned.diags);
  EXPECT_EQ(stats.loops_fissioned, 1);
  EXPECT_GE(stats.locals_expanded + stats.locals_rematerialized, 1);
  double actual = run_and_get(*fissioned.program, "checksum");
  EXPECT_NEAR(actual, expected, 1e-9);
}

TEST(Fission, ElementIterationNormalized) {
  const char* source = R"(
    class P { double v; double w; }
    class A {
      double g(double x) { return x + 10.0; }
      void main() {
        P[] ps = new P[16];
        foreach (i in [0 : 15]) {
          P q = new P();
          q.v = i * 1.0;
          ps[i] = q;
        }
        double checksum = 0.0;
        PipelinedLoop (p in [0 : runtime_define_np - 1]) {
          foreach (t in ps) {
            double a = t.v * 2.0;
            double b = g(a);
            t.w = b;
          }
        }
        foreach (i in [0 : 15]) { checksum = checksum + ps[i].w; }
      }
    }
  )";
  Fixture original = prepare(source);
  double expected = run_and_get(*original.program, "checksum");

  Fixture fissioned = prepare(source);
  FissionStats stats = fission_pipelined_body(*fissioned.loop, fissioned.diags);
  EXPECT_EQ(stats.loops_fissioned, 1);
  double actual = run_and_get(*fissioned.program, "checksum");
  EXPECT_NEAR(actual, expected, 1e-9);
}

TEST(Fission, PurityChecks) {
  DiagnosticEngine diags;
  auto program = Parser::parse(R"(
    class A {
      int n() { return 3; }
      void f(double[] xs, int k) {
        double a = xs[k] + 1.0;
      }
    }
  )", diags);
  Sema sema(*program, diags);
  sema.run();
  const auto& decl = static_cast<const VarDeclStmt&>(
      *program->classes[0]->methods[1]->body->statements[0]);
  EXPECT_TRUE(is_pure_expr(*decl.init));
}

TEST(Fission, SplitterDetection) {
  DiagnosticEngine diags;
  auto program = Parser::parse(R"(
    class A {
      int g() { return 1; }
      void f(int c) {
        int x = 1 + 2;
        int y = g();
        if (c > 0) { int z = 0; }
      }
    }
  )", diags);
  Sema sema(*program, diags);
  sema.run();
  const auto& stmts = program->classes[0]->methods[1]->body->statements;
  EXPECT_FALSE(is_piece_splitter(*stmts[0]));
  EXPECT_TRUE(is_piece_splitter(*stmts[1]));   // contains a call
  EXPECT_TRUE(is_piece_splitter(*stmts[2]));   // conditional
}

}  // namespace
}  // namespace cgp
