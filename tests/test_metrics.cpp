// Observability-layer tests: latency histograms/summaries, the JSON
// document model, and the trace round-trip.
#include <gtest/gtest.h>

#include <stdexcept>

#include "support/json.h"
#include "support/metrics.h"

namespace cgp::support {
namespace {

TEST(LatencyHistogram, BucketsByLog2Microseconds) {
  LatencyHistogram h;
  h.record(0.5e-6);   // sub-microsecond -> bucket 0
  h.record(1.5e-6);   // [1us, 2us) -> bucket 0
  h.record(3e-6);     // [2us, 4us) -> bucket 1
  h.record(100e-6);   // [64us, 128us) -> bucket 6
  h.record(1000.0);   // clamped into the last bucket
  EXPECT_EQ(h.counts[0], 2);
  EXPECT_EQ(h.counts[1], 1);
  EXPECT_EQ(h.counts[6], 1);
  EXPECT_EQ(h.counts[LatencyHistogram::kBuckets - 1], 1);
  EXPECT_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lo_us(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_lo_us(6), 64.0);
}

TEST(LatencySummary, TracksMinMeanMaxAndMerges) {
  LatencySummary a;
  a.record(1e-3);
  a.record(3e-3);
  EXPECT_DOUBLE_EQ(a.min_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(a.max_seconds, 3e-3);
  EXPECT_DOUBLE_EQ(a.mean_seconds(), 2e-3);

  LatencySummary b;
  b.record(9e-3);
  a.merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.min_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(a.max_seconds, 9e-3);
  EXPECT_EQ(a.histogram.total(), 3);

  LatencySummary empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 3);
}

TEST(FilterMetrics, BusyIsTotalMinusStalls) {
  FilterMetrics f;
  f.total_seconds = 10.0;
  f.stall_input_seconds = 3.0;
  f.stall_output_seconds = 2.5;
  EXPECT_DOUBLE_EQ(f.busy_seconds(), 4.5);
  f.stall_input_seconds = 20.0;  // clock skew must not go negative
  EXPECT_DOUBLE_EQ(f.busy_seconds(), 0.0);
}

TEST(FilterMetrics, MergeAggregatesCopies) {
  FilterMetrics a;
  a.name = "stage0";
  a.copies = 1;
  a.packets_out = 10;
  a.bytes_out = 100;
  a.total_seconds = 1.0;
  FilterMetrics b = a;
  a.merge(b);
  EXPECT_EQ(a.copies, 2);
  EXPECT_EQ(a.packets_out, 20);
  EXPECT_EQ(a.bytes_out, 200);
  EXPECT_DOUBLE_EQ(a.total_seconds, 2.0);
  EXPECT_EQ(a.name, "stage0");
}

TEST(Json, ParsesScalarsArraysObjects) {
  Json j = Json::parse(R"({"a": [1, 2.5, -3], "b": "x\ny", "c": true,
                           "d": null})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_EQ(j.at("a").as_array()[2].as_int(), -3);
  EXPECT_EQ(j.at("b").as_string(), "x\ny");
  EXPECT_TRUE(j.at("c").as_bool());
  EXPECT_TRUE(j.at("d").is_null());
  EXPECT_FALSE(j.contains("missing"));
  EXPECT_THROW(j.at("missing"), std::out_of_range);
}

TEST(Json, DumpParseRoundTripPreservesOrder) {
  Json obj{Json::Object{}};
  obj.set("zeta", Json(1));
  obj.set("alpha", Json("two"));
  obj.set("nested", Json(Json::Array{Json(true), Json(nullptr)}));
  const std::string compact = obj.dump();
  EXPECT_EQ(compact, R"({"zeta":1,"alpha":"two","nested":[true,null]})");
  Json back = Json::parse(obj.dump(2));
  EXPECT_EQ(back.as_object()[0].first, "zeta");
  EXPECT_EQ(back.at("alpha").as_string(), "two");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("12 34"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
}

PipelineTrace sample_trace() {
  PipelineTrace trace;
  trace.wall_seconds = 1.25;
  trace.packets = 16;
  FilterMetrics source;
  source.name = "stage0";
  source.copies = 2;
  source.packets_out = 16;
  source.bytes_out = 4096;
  source.total_seconds = 2.0;
  source.stall_output_seconds = 0.5;
  source.latency.record(1e-4);
  source.latency.record(2e-4);
  FilterMetrics sink;
  sink.name = "stage1";
  sink.copies = 1;
  sink.packets_in = 16;
  sink.bytes_in = 4096;
  sink.total_seconds = 1.2;
  sink.stall_input_seconds = 0.25;
  sink.latency.record(5e-5);
  trace.filters = {source, sink};
  LinkMetrics link;
  link.buffers = 16;
  link.bytes = 4096;
  link.capacity = 16;
  link.occupancy_high_water = 7;
  link.producer_block_seconds = 0.5;
  link.consumer_block_seconds = 0.25;
  trace.links = {link};
  return trace;
}

TEST(Trace, JsonRoundTripPreservesEveryField) {
  const PipelineTrace trace = sample_trace();
  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);

  EXPECT_DOUBLE_EQ(back.wall_seconds, trace.wall_seconds);
  EXPECT_EQ(back.packets, trace.packets);
  ASSERT_EQ(back.filters.size(), 2u);
  const FilterMetrics& src = back.filters[0];
  EXPECT_EQ(src.name, "stage0");
  EXPECT_EQ(src.copies, 2);
  EXPECT_EQ(src.packets_out, 16);
  EXPECT_EQ(src.bytes_out, 4096);
  EXPECT_DOUBLE_EQ(src.total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(src.stall_output_seconds, 0.5);
  EXPECT_DOUBLE_EQ(src.busy_seconds(), 1.5);
  EXPECT_EQ(src.latency.count, 2);
  EXPECT_DOUBLE_EQ(src.latency.min_seconds, 1e-4);
  EXPECT_DOUBLE_EQ(src.latency.max_seconds, 2e-4);
  EXPECT_EQ(src.latency.histogram.total(), 2);
  ASSERT_EQ(back.links.size(), 1u);
  EXPECT_EQ(back.links[0].occupancy_high_water, 7);
  EXPECT_EQ(back.links[0].capacity, 16);
  EXPECT_DOUBLE_EQ(back.links[0].producer_block_seconds, 0.5);

  // A second round trip is byte-identical: the schema is stable.
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, BottleneckIsLargestBusyFilter) {
  PipelineTrace trace = sample_trace();
  EXPECT_EQ(trace.bottleneck_filter(), 0);  // source busy 1.5 vs sink 0.95
  trace.filters[1].total_seconds = 5.0;
  EXPECT_EQ(trace.bottleneck_filter(), 1);
  EXPECT_EQ(PipelineTrace{}.bottleneck_filter(), -1);
}

TEST(Trace, SerializerEmbedsBottleneckAndSchema) {
  const Json j = Json::parse(trace_to_json(sample_trace()));
  EXPECT_EQ(j.at("schema").as_string(), "cgpipe-trace-v8");
  EXPECT_EQ(j.at("bottleneck_filter").as_string(), "stage0");
}

TEST(Trace, RoundTripPreservesReplicaPlan) {
  PipelineTrace trace = sample_trace();
  trace.stage_replicas = {1, 4, 1};

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  ASSERT_EQ(back.stage_replicas.size(), 3u);
  EXPECT_EQ(back.stage_replicas[0], 1);
  EXPECT_EQ(back.stage_replicas[1], 4);
  EXPECT_EQ(back.stage_replicas[2], 1);
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, ReadsV3DocumentsWithEmptyReplicaPlan) {
  // A v3 trace predates per-stage replica counts; it still loads, with the
  // v4 field at its benign default.
  PipelineTrace trace = sample_trace();
  trace.stage_replicas = {2, 2, 1};
  std::string json = trace_to_json(trace);
  const std::size_t pos = json.find("cgpipe-trace-v8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "cgpipe-trace-v3");
  const std::size_t field = json.find("\"stage_replicas\"");
  ASSERT_NE(field, std::string::npos);
  const std::size_t close = json.find(']', field);
  ASSERT_NE(close, std::string::npos);
  json.erase(field, close - field + 2);  // drop the field + trailing comma
  const PipelineTrace back = trace_from_json(json);
  EXPECT_TRUE(back.stage_replicas.empty());
}

TEST(Trace, FromJsonRejectsForeignDocuments) {
  EXPECT_THROW(trace_from_json("{}"), std::runtime_error);
  EXPECT_THROW(trace_from_json("[1,2]"), std::runtime_error);
  EXPECT_THROW(trace_from_json(R"({"schema":"other"})"), std::runtime_error);
}

TEST(Trace, RoundTripPreservesFaultSurface) {
  PipelineTrace trace = sample_trace();
  trace.fault_policy = "restart-copy";
  trace.completed = false;
  trace.error = "group 'stage1': all 1 copies dead after bounded retries";
  trace.filters[1].faults = 2;
  trace.filters[1].retries = 1;
  trace.filters[1].dropped_packets = 1;
  trace.links[0].dropped_buffers = 3;
  FaultRecord fault;
  fault.group = "stage1";
  fault.copy = 0;
  fault.packet_index = 5;
  fault.what = "injected: stage1:throw@5";
  fault.attempt = 1;
  fault.resolution = FaultResolution::kRetried;
  fault.at_seconds = 0.125;
  trace.faults.push_back(fault);

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  EXPECT_FALSE(back.completed);
  EXPECT_EQ(back.error, trace.error);
  EXPECT_EQ(back.fault_policy, "restart-copy");
  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].group, "stage1");
  EXPECT_EQ(back.faults[0].copy, 0);
  EXPECT_EQ(back.faults[0].packet_index, 5);
  EXPECT_EQ(back.faults[0].what, "injected: stage1:throw@5");
  EXPECT_EQ(back.faults[0].attempt, 1);
  EXPECT_EQ(back.faults[0].resolution, FaultResolution::kRetried);
  EXPECT_DOUBLE_EQ(back.faults[0].at_seconds, 0.125);
  EXPECT_EQ(back.filters[1].faults, 2);
  EXPECT_EQ(back.filters[1].retries, 1);
  EXPECT_EQ(back.filters[1].dropped_packets, 1);
  EXPECT_EQ(back.links[0].dropped_buffers, 3);
  // The fault surface survives a second round trip byte-identically.
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, RoundTripPreservesCheckpointSurface) {
  PipelineTrace trace = sample_trace();
  trace.filters[1].checkpoints = 3;
  CheckpointRecord cut;
  cut.id = 2;
  cut.group = "run";
  cut.copy = -1;
  cut.packet_index = 48;
  cut.snapshot_bytes = 1024;
  cut.parts = 4;
  cut.quiesce_seconds = 0.01;
  cut.at_seconds = 0.5;
  trace.checkpoints.push_back(cut);
  // v5 interleaves per-copy part records with the "run" summaries.
  CheckpointRecord part;
  part.id = 2;
  part.group = "stage1";
  part.copy = 1;
  part.packet_index = -1;
  part.snapshot_bytes = 256;
  part.at_seconds = 0.49;
  trace.checkpoints.push_back(part);

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  EXPECT_EQ(back.filters[1].checkpoints, 3);
  ASSERT_EQ(back.checkpoints.size(), 2u);
  EXPECT_EQ(back.checkpoints[0].id, 2);
  EXPECT_EQ(back.checkpoints[0].group, "run");
  EXPECT_EQ(back.checkpoints[0].copy, -1);
  EXPECT_EQ(back.checkpoints[0].packet_index, 48);
  EXPECT_EQ(back.checkpoints[0].snapshot_bytes, 1024);
  EXPECT_EQ(back.checkpoints[0].parts, 4);
  EXPECT_DOUBLE_EQ(back.checkpoints[0].quiesce_seconds, 0.01);
  EXPECT_DOUBLE_EQ(back.checkpoints[0].at_seconds, 0.5);
  EXPECT_EQ(back.checkpoints[1].group, "stage1");
  EXPECT_EQ(back.checkpoints[1].copy, 1);
  EXPECT_EQ(back.checkpoints[1].packet_index, -1);
  EXPECT_EQ(back.checkpoints[1].snapshot_bytes, 256);
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, ReadsV4CheckpointRecordsWithoutParts) {
  // A v4 document's checkpoint records predate the per-copy `parts`
  // field; they still load with it at its benign default.
  PipelineTrace trace = sample_trace();
  CheckpointRecord cut;
  cut.id = 0;
  cut.group = "run";
  cut.packet_index = 16;
  trace.checkpoints.push_back(cut);
  std::string json = trace_to_json(trace);
  const std::size_t pos = json.find("cgpipe-trace-v8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "cgpipe-trace-v4");
  const std::size_t field = json.find("\"parts\"");
  ASSERT_NE(field, std::string::npos);
  const std::size_t comma = json.find(',', field);
  ASSERT_NE(comma, std::string::npos);
  json.erase(field, comma - field + 1);
  const PipelineTrace back = trace_from_json(json);
  ASSERT_EQ(back.checkpoints.size(), 1u);
  EXPECT_EQ(back.checkpoints[0].parts, 0);
  EXPECT_EQ(back.checkpoints[0].packet_index, 16);
}

TEST(Trace, ReadsV2DocumentsWithZeroCheckpointSurface) {
  // A v2 trace (fault surface, no checkpoint records) still loads, with
  // every v3 field at its benign default.
  PipelineTrace trace = sample_trace();
  std::string json = trace_to_json(trace);
  const std::size_t pos = json.find("cgpipe-trace-v8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "cgpipe-trace-v2");
  const PipelineTrace back = trace_from_json(json);
  EXPECT_TRUE(back.checkpoints.empty());
  EXPECT_EQ(back.filters[1].checkpoints, 0);
}

TEST(Trace, ReadsV1DocumentsWithZeroFaultSurface) {
  // A trace written before the fault surface existed must still load, with
  // every v2 field at its benign default.
  const std::string v1 =
      R"({"schema":"cgpipe-trace-v1","wall_seconds":0.5,"packets":4,)"
      R"("bottleneck_filter":null,"filters":[],"links":[]})";
  const PipelineTrace trace = trace_from_json(v1);
  EXPECT_DOUBLE_EQ(trace.wall_seconds, 0.5);
  EXPECT_EQ(trace.packets, 4);
  EXPECT_TRUE(trace.completed);
  EXPECT_TRUE(trace.faults.empty());
  EXPECT_TRUE(trace.error.empty());
  EXPECT_TRUE(trace.fault_policy.empty());
}

TEST(Trace, RoundTripPreservesPoolClassBreakdown) {
  PipelineTrace trace = sample_trace();
  trace.pool.acquires = 100;
  trace.pool.hits = 90;
  trace.pool.misses = 10;
  trace.pool.recycles = 95;
  trace.pool.discarded = 5;
  PoolClassMetrics c;
  c.class_index = 6;
  c.class_bytes = 64;
  c.acquires = 100;
  c.hits = 90;
  c.misses = 10;
  c.recycles = 95;
  c.discarded = 5;
  c.high_water = 12;
  trace.pool.classes.push_back(c);

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  ASSERT_EQ(back.pool.classes.size(), 1u);
  EXPECT_EQ(back.pool.classes[0].class_index, 6);
  EXPECT_EQ(back.pool.classes[0].class_bytes, 64);
  EXPECT_EQ(back.pool.classes[0].acquires, 100);
  EXPECT_EQ(back.pool.classes[0].hits, 90);
  EXPECT_EQ(back.pool.classes[0].misses, 10);
  EXPECT_EQ(back.pool.classes[0].recycles, 95);
  EXPECT_EQ(back.pool.classes[0].discarded, 5);
  EXPECT_EQ(back.pool.classes[0].high_water, 12);
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, RoundTripPreservesLinkTransportSurface) {
  PipelineTrace trace = sample_trace();
  trace.links[0].transport = "proc";
  trace.links[0].frames = 128;
  trace.links[0].wire_bytes = 65536;
  trace.links[0].send_wait_seconds = 0.25;
  trace.links[0].recv_wait_seconds = 0.125;

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  ASSERT_EQ(back.links.size(), trace.links.size());
  EXPECT_EQ(back.links[0].transport, "proc");
  EXPECT_EQ(back.links[0].frames, 128);
  EXPECT_EQ(back.links[0].wire_bytes, 65536);
  EXPECT_DOUBLE_EQ(back.links[0].send_wait_seconds, 0.25);
  EXPECT_DOUBLE_EQ(back.links[0].recv_wait_seconds, 0.125);
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, ReadsV6DocumentsWithoutTransportSurface) {
  // A v6 trace predates the per-link transport fields; it still loads
  // with the v7 fields at their benign defaults.
  const std::string v6 =
      R"({"schema":"cgpipe-trace-v6","wall_seconds":0.5,"packets":4,)"
      R"("bottleneck_filter":null,"filters":[],"links":[{)"
      R"("buffers":7,"bytes":512,"capacity":4,"occupancy_high_water":3,)"
      R"("producer_block_seconds":0.0,"consumer_block_seconds":0.0}]})";
  const PipelineTrace back = trace_from_json(v6);
  ASSERT_EQ(back.links.size(), 1u);
  EXPECT_EQ(back.links[0].buffers, 7);
  EXPECT_TRUE(back.links[0].transport.empty());
  EXPECT_EQ(back.links[0].frames, 0);
  EXPECT_EQ(back.links[0].wire_bytes, 0);
  EXPECT_DOUBLE_EQ(back.links[0].send_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(back.links[0].recv_wait_seconds, 0.0);
}

TEST(Trace, ReadsV5DocumentsWithoutPoolClasses) {
  // A v5 trace predates the per-size-class pool breakdown; it still loads
  // with the v6 field empty.
  PipelineTrace trace = sample_trace();
  trace.pool.acquires = 10;
  trace.pool.hits = 8;
  trace.pool.misses = 2;
  std::string json = trace_to_json(trace);
  const std::size_t pos = json.find("cgpipe-trace-v8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "cgpipe-trace-v5");
  const std::size_t field = json.find("\"classes\"");
  ASSERT_NE(field, std::string::npos);
  const std::size_t close = json.find(']', field);
  ASSERT_NE(close, std::string::npos);
  json.erase(field, close - field + 2);  // drop the field + trailing comma
  const PipelineTrace back = trace_from_json(json);
  EXPECT_EQ(back.pool.acquires, 10);
  EXPECT_EQ(back.pool.hits, 8);
  EXPECT_TRUE(back.pool.classes.empty());
}

TEST(Trace, RoundTripPreservesSelfHealingSurface) {
  PipelineTrace trace = sample_trace();
  trace.degraded = true;
  trace.completed = false;
  trace.error = "self-heal: restart budget (2) exhausted for stage 'stage1'";
  RespawnRecord r;
  r.group = "stage1";
  r.worker = 1;
  r.restart = 2;
  r.cut_id = 5;
  r.mttr_seconds = 0.043;
  r.at_seconds = 1.5;
  r.cause = "died (signal 9)";
  trace.respawns.push_back(r);
  HeartbeatMetrics h;
  h.group = "stage0";
  h.beats = 120;
  h.max_latency_seconds = 0.002;
  h.sum_latency_seconds = 0.06;
  trace.heartbeats.push_back(h);

  const std::string json = trace_to_json(trace);
  const PipelineTrace back = trace_from_json(json);
  EXPECT_TRUE(back.degraded);
  EXPECT_FALSE(back.completed);
  ASSERT_EQ(back.respawns.size(), 1u);
  EXPECT_EQ(back.respawns[0].group, "stage1");
  EXPECT_EQ(back.respawns[0].worker, 1);
  EXPECT_EQ(back.respawns[0].restart, 2);
  EXPECT_EQ(back.respawns[0].cut_id, 5);
  EXPECT_DOUBLE_EQ(back.respawns[0].mttr_seconds, 0.043);
  EXPECT_DOUBLE_EQ(back.respawns[0].at_seconds, 1.5);
  EXPECT_EQ(back.respawns[0].cause, "died (signal 9)");
  ASSERT_EQ(back.heartbeats.size(), 1u);
  EXPECT_EQ(back.heartbeats[0].group, "stage0");
  EXPECT_EQ(back.heartbeats[0].beats, 120);
  EXPECT_DOUBLE_EQ(back.heartbeats[0].max_latency_seconds, 0.002);
  EXPECT_DOUBLE_EQ(back.heartbeats[0].sum_latency_seconds, 0.06);
  EXPECT_DOUBLE_EQ(back.heartbeats[0].mean_latency_seconds(), 0.0005);
  // The self-healing surface survives a second round trip byte-identically.
  EXPECT_EQ(trace_to_json(back), json);
}

TEST(Trace, ReadsV7DocumentsWithoutSelfHealingSurface) {
  // A v7 trace predates respawn records, heartbeat telemetry, and the
  // degradation flag; it still loads with every v8 field at its benign
  // default.
  PipelineTrace trace = sample_trace();
  std::string json = trace_to_json(trace);
  const std::size_t pos = json.find("cgpipe-trace-v8");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "cgpipe-trace-v7");
  const auto drop = [&json](const std::string& needle) {
    const std::size_t at = json.find(needle);
    ASSERT_NE(at, std::string::npos) << needle;
    json.erase(at, needle.size());
  };
  drop("\"degraded\": false,");
  drop(",\n  \"respawns\": []");
  drop(",\n  \"heartbeats\": []");
  const PipelineTrace back = trace_from_json(json);
  EXPECT_FALSE(back.degraded);
  EXPECT_TRUE(back.respawns.empty());
  EXPECT_TRUE(back.heartbeats.empty());
}

TEST(PoolMetrics, MergeCombinesClassesByIndex) {
  PoolMetrics a;
  PoolClassMetrics c6;
  c6.class_index = 6;
  c6.acquires = 10;
  c6.hits = 8;
  c6.high_water = 4;
  a.classes.push_back(c6);
  PoolMetrics b;
  PoolClassMetrics c6b = c6;
  c6b.high_water = 7;
  b.classes.push_back(c6b);
  PoolClassMetrics c9;
  c9.class_index = 9;
  c9.acquires = 3;
  b.classes.push_back(c9);
  a.merge(b);
  ASSERT_EQ(a.classes.size(), 2u);
  EXPECT_EQ(a.classes[0].class_index, 6);
  EXPECT_EQ(a.classes[0].acquires, 20);
  EXPECT_EQ(a.classes[0].hits, 16);
  EXPECT_EQ(a.classes[0].high_water, 7);  // max, not sum
  EXPECT_EQ(a.classes[1].class_index, 9);
  EXPECT_EQ(a.classes[1].acquires, 3);
}

TEST(FaultResolutionNames, RoundTripAndReject) {
  for (FaultResolution r :
       {FaultResolution::kFatal, FaultResolution::kRetried,
        FaultResolution::kDroppedPacket, FaultResolution::kCopyDead,
        FaultResolution::kWatchdog, FaultResolution::kRestoredCheckpoint}) {
    EXPECT_EQ(fault_resolution_from_name(fault_resolution_name(r)), r);
  }
  EXPECT_THROW(fault_resolution_from_name("nope"), std::runtime_error);
}

TEST(FilterMetrics, MergeAggregatesFaultCounters) {
  FilterMetrics a;
  a.faults = 1;
  a.retries = 2;
  a.dropped_packets = 3;
  FilterMetrics b = a;
  a.merge(b);
  EXPECT_EQ(a.faults, 2);
  EXPECT_EQ(a.retries, 4);
  EXPECT_EQ(a.dropped_packets, 6);
}

}  // namespace
}  // namespace cgp::support
