// Lexer unit tests.
#include <gtest/gtest.h>

#include "lexer/lexer.h"

namespace cgp {
namespace {

std::vector<Token> lex(std::string_view source) {
  DiagnosticEngine diags;
  Lexer lexer(source, diags);
  std::vector<Token> tokens = lexer.tokenize();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return tokens;
}

TEST(Lexer, EmptyInputYieldsEof) {
  std::vector<Token> tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, Keywords) {
  std::vector<Token> tokens =
      lex("class interface foreach in PipelinedLoop Rectdomain");
  EXPECT_TRUE(tokens[0].is(TokenKind::KwClass));
  EXPECT_TRUE(tokens[1].is(TokenKind::KwInterface));
  EXPECT_TRUE(tokens[2].is(TokenKind::KwForeach));
  EXPECT_TRUE(tokens[3].is(TokenKind::KwIn));
  EXPECT_TRUE(tokens[4].is(TokenKind::KwPipelinedLoop));
  EXPECT_TRUE(tokens[5].is(TokenKind::KwRectdomain));
}

TEST(Lexer, RuntimeDefinePrefixStaysIdentifier) {
  std::vector<Token> tokens = lex("runtime_define runtime_define_num_packets");
  EXPECT_TRUE(tokens[0].is(TokenKind::KwRuntimeDefine));
  ASSERT_TRUE(tokens[1].is(TokenKind::Identifier));
  EXPECT_EQ(tokens[1].text, "runtime_define_num_packets");
}

TEST(Lexer, IntegerLiterals) {
  std::vector<Token> tokens = lex("0 42 123456789012345");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789012345LL);
}

TEST(Lexer, FloatLiterals) {
  std::vector<Token> tokens = lex("1.5 2.0e3 7e-2 3f 4L");
  EXPECT_TRUE(tokens[0].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.07);
  EXPECT_TRUE(tokens[3].is(TokenKind::FloatLiteral));  // 3f
  EXPECT_TRUE(tokens[4].is(TokenKind::IntLiteral));    // 4L
}

TEST(Lexer, ScientificWithCapitalE) {
  std::vector<Token> tokens = lex("1.0e30 1.0E30");
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.0e30);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 1.0e30);
}

TEST(Lexer, Operators) {
  std::vector<Token> tokens = lex("+ - * / % == != <= >= < > && || ! = += ++");
  TokenKind expected[] = {
      TokenKind::Plus,       TokenKind::Minus,      TokenKind::Star,
      TokenKind::Slash,      TokenKind::Percent,    TokenKind::EqualEqual,
      TokenKind::NotEqual,   TokenKind::LessEqual,  TokenKind::GreaterEqual,
      TokenKind::Less,       TokenKind::Greater,    TokenKind::AmpAmp,
      TokenKind::PipePipe,   TokenKind::Bang,       TokenKind::Assign,
      TokenKind::PlusAssign, TokenKind::PlusPlus,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_TRUE(tokens[i].is(expected[i])) << i;
  }
}

TEST(Lexer, CommentsSkipped) {
  std::vector<Token> tokens = lex(
      "a // line comment\n"
      "/* block\n comment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, LocationsTracked) {
  std::vector<Token> tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(Lexer, StringLiterals) {
  std::vector<Token> tokens = lex(R"("hello \"world\"\n")");
  ASSERT_TRUE(tokens[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(tokens[0].text, "hello \"world\"\n");
}

TEST(Lexer, UnterminatedStringReportsError) {
  DiagnosticEngine diags;
  Lexer lexer("\"oops", diags);
  lexer.tokenize();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnterminatedBlockCommentReportsError) {
  DiagnosticEngine diags;
  Lexer lexer("/* never closed", diags);
  lexer.tokenize();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnknownCharacterReportsError) {
  DiagnosticEngine diags;
  Lexer lexer("a @ b", diags);
  lexer.tokenize();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, RectdomainLiteralTokens) {
  std::vector<Token> tokens = lex("[0 : n - 1]");
  EXPECT_TRUE(tokens[0].is(TokenKind::LBracket));
  EXPECT_TRUE(tokens[1].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[2].is(TokenKind::Colon));
  EXPECT_TRUE(tokens[5].is(TokenKind::IntLiteral));
  EXPECT_TRUE(tokens[6].is(TokenKind::RBracket));
}

}  // namespace
}  // namespace cgp
