// Cost model tests (§4.3): volumes, op counts, pipeline time formulas,
// and the per-backend transport cost fold (docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include "apps/app_configs.h"
#include "cost/environment.h"
#include "cost/opcount.h"
#include "cost/volume.h"
#include "decomp/decompose.h"
#include "driver/compiler.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

TEST(Environment, UniformFactory) {
  EnvironmentSpec env = EnvironmentSpec::uniform(4, 1e9, 1e8);
  EXPECT_TRUE(env.valid());
  EXPECT_EQ(env.stages(), 4);
  EXPECT_EQ(env.links.size(), 3u);
}

TEST(Environment, PaperClusterWidths) {
  for (int width : {1, 2, 4}) {
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    EXPECT_TRUE(env.valid());
    EXPECT_EQ(env.units[0].copies, width);
    EXPECT_EQ(env.units[1].copies, width);
    EXPECT_EQ(env.units[2].copies, 1);
    EXPECT_EQ(env.links[0].lanes, width);
  }
}

TEST(Environment, CostPrimitives) {
  ComputeUnit unit{"u", 100.0, 2};
  EXPECT_DOUBLE_EQ(cost_comp(unit, 400.0), 2.0);  // 400 ops / (100*2)
  Link link{50.0, 0.5, 1};
  EXPECT_DOUBLE_EQ(cost_comm(link, 100.0), 2.5);
}

TEST(Environment, PipelineTotalTimeFormula) {
  // (N-1) * bottleneck + full traversal (§4.3 formulas 1/2).
  std::vector<double> units = {1.0, 3.0, 2.0};
  std::vector<double> links = {0.5, 0.5};
  double total = pipeline_total_time(10, units, links);
  EXPECT_DOUBLE_EQ(total, 9.0 * 3.0 + (1.0 + 3.0 + 2.0 + 0.5 + 0.5));
}

TEST(Environment, LinkBottleneck) {
  std::vector<double> units = {1.0, 1.0};
  std::vector<double> links = {5.0};
  EXPECT_DOUBLE_EQ(pipeline_total_time(3, units, links), 2.0 * 5.0 + 7.0);
}

TEST(Environment, ZeroPacketsIsZero) {
  EXPECT_DOUBLE_EQ(pipeline_total_time(0, {1.0}, {}), 0.0);
}

// ---------------------------------------------------------------------------
// Volume
// ---------------------------------------------------------------------------

TEST(Volume, ScalarSizes) {
  ClassRegistry registry;
  SizeEnv sizes(registry);
  ValueSet set;
  set.add(ValueId{"x", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  set.add(ValueId{"y", {}},
          ValueEntry{Type::primitive(PrimKind::Double), {}});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 12.0);
}

TEST(Volume, SectionedElements) {
  ClassRegistry registry;
  SizeEnv sizes(registry);
  ValueSet set;
  set.add(ValueId{"a", {kElemStep}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(0), SymPoly(99))});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 400.0);
}

TEST(Volume, SymbolicSectionNeedsBinding) {
  ClassRegistry registry;
  SizeEnv sizes(registry);
  ValueSet set;
  set.add(ValueId{"a", {kElemStep}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(0),
                                       SymPoly::symbol("n") - 1)});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 4.0);  // default extent 1
  sizes.bind("n", 50);
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 200.0);
}

TEST(Volume, WholeCollectionUsesLength) {
  ClassRegistry registry;
  SizeEnv sizes(registry);
  sizes.bind_length("xs", 32);
  ValueSet set;
  set.add(ValueId{"xs", {kElemStep}},
          ValueEntry{Type::primitive(PrimKind::Double), {}});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 256.0);
}

TEST(Volume, ClassPayload) {
  ClassRegistry registry;
  ClassInfo cube;
  cube.name = "Cube";
  for (int i = 0; i < 11; ++i) {
    cube.fields.push_back(
        FieldInfo{"f" + std::to_string(i), Type::primitive(PrimKind::Float), i});
  }
  registry.add(cube);
  SizeEnv sizes(registry);
  ValueSet set;
  set.add(ValueId{"c", {kElemStep}},
          ValueEntry{Type::class_type("Cube"),
                     RectSection::dim1(SymPoly(0), SymPoly(9))});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 440.0);  // 10 cubes x 44 bytes
}

TEST(Volume, NormalizationAvoidsDoubleCounting) {
  ClassRegistry registry;
  ClassInfo p;
  p.name = "P";
  p.fields.push_back(FieldInfo{"v", Type::primitive(PrimKind::Float), 0});
  registry.add(p);
  SizeEnv sizes(registry);
  ValueSet set;
  set.add(ValueId{"c", {kElemStep}},
          ValueEntry{Type::class_type("P"),
                     RectSection::dim1(SymPoly(0), SymPoly(9))});
  set.add(ValueId{"c", {kElemStep, "v"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(0), SymPoly(9))});
  EXPECT_DOUBLE_EQ(sizes.bytes_of(set), 40.0);  // counted once
}

// ---------------------------------------------------------------------------
// Op counting
// ---------------------------------------------------------------------------

struct CountFixture {
  std::unique_ptr<Program> program;
  ClassRegistry registry;
  const MethodDecl* method = nullptr;
};

CountFixture prepare(std::string_view source) {
  CountFixture f;
  DiagnosticEngine diags;
  f.program = Parser::parse(source, diags);
  Sema sema(*f.program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  f.registry = std::move(result.registry);
  f.method = f.registry.find("A")->find_method("f");
  return f;
}

std::vector<const Stmt*> stmts_of(const CountFixture& f) {
  std::vector<const Stmt*> out;
  for (const StmtPtr& s : f.method->body->statements) out.push_back(s.get());
  return out;
}

TEST(OpCount, LoopMultipliesBody) {
  CountFixture f = prepare(R"(
    class A {
      void f(double[] xs) {
        foreach (i in [0 : 99]) {
          xs[i] = xs[i] * 2.0;
        }
      }
    }
  )");
  SizeEnv sizes(f.registry);
  OpCounter counter(f.registry, sizes);
  OpCounts counts = counter.count_stmts(stmts_of(f));
  // 100 iterations, each with a float multiply.
  EXPECT_GE(counts.float_ops, 100.0);
  EXPECT_GE(counts.mem_ops, 200.0);
  EXPECT_GE(counts.total(), 500.0);
}

TEST(OpCount, SymbolicBoundsUseBindings) {
  CountFixture f = prepare(R"(
    class A {
      void f(double[] xs, int n) {
        foreach (i in [0 : n - 1]) {
          xs[i] = 1.0;
        }
      }
    }
  )");
  SizeEnv sizes(f.registry);
  sizes.bind("n", 1000);
  OpCounter counter(f.registry, sizes);
  OpCounts counts = counter.count_stmts(stmts_of(f));
  EXPECT_GE(counts.mem_ops, 1000.0);

  SizeEnv unbound(f.registry);
  OpCounter fallback(f.registry, unbound);
  EXPECT_LT(fallback.count_stmts(stmts_of(f)).total(), counts.total());
}

TEST(OpCount, ConditionalWeightedBySelectivity) {
  CountFixture f = prepare(R"(
    class A {
      void f(double[] xs) {
        foreach (i in [0 : 99]) {
          if (xs[i] > 0.5) {
            xs[i] = xs[i] * 2.0;
          }
        }
      }
    }
  )");
  SizeEnv sizes(f.registry);
  OpCountOptions half;
  half.branch_selectivity = 0.5;
  OpCountOptions tenth;
  tenth.branch_selectivity = 0.1;
  OpCounts c_half = OpCounter(f.registry, sizes, half).count_stmts(stmts_of(f));
  OpCounts c_tenth =
      OpCounter(f.registry, sizes, tenth).count_stmts(stmts_of(f));
  EXPECT_GT(c_half.total(), c_tenth.total());
}

TEST(TransportCost, SpecOrderingAcrossBackends) {
  const TransportCostSpec thread = transport_cost_spec("thread");
  const TransportCostSpec proc = transport_cost_spec("proc");
  const TransportCostSpec tcp = transport_cost_spec("tcp");
  // The thread backend moves pointers: the paper's free-link model.
  EXPECT_EQ(thread.ops_per_byte, 0.0);
  EXPECT_EQ(thread.ops_per_frame, 0.0);
  // Crossing a process boundary costs real work, and sockets cost
  // strictly more than shared memory in both terms.
  EXPECT_GT(proc.ops_per_byte, 0.0);
  EXPECT_GT(proc.ops_per_frame, 0.0);
  EXPECT_GT(tcp.ops_per_byte, proc.ops_per_byte);
  EXPECT_GT(tcp.ops_per_frame, proc.ops_per_frame);
  // Unknown names degrade to the zero-cost spec instead of throwing.
  EXPECT_EQ(transport_cost_spec("mpi").ops_per_byte, 0.0);
}

TEST(TransportCost, BackendFoldsIntoLinkModel) {
  const apps::AppConfig config = apps::tiny_config(256, 8);
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult compiled = compile_pipeline(config.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.diagnostics;

  DecompositionInput inputs[3];
  const char* backends[3] = {"thread", "proc", "tcp"};
  for (int i = 0; i < 3; ++i) {
    options.backend = backends[i];
    inputs[i] =
        make_decomposition_input(compiled.model, options.env, options);
  }
  // thread leaves the environment untouched; proc degrades every link's
  // effective bandwidth and adds latency; tcp degrades both further.
  for (std::size_t k = 0; k < inputs[0].env.links.size(); ++k) {
    EXPECT_DOUBLE_EQ(inputs[0].env.links[k].bandwidth_bytes_per_sec,
                     options.env.links[k].bandwidth_bytes_per_sec);
    EXPECT_DOUBLE_EQ(inputs[0].env.links[k].latency_sec,
                     options.env.links[k].latency_sec);
    EXPECT_LT(inputs[1].env.links[k].bandwidth_bytes_per_sec,
              inputs[0].env.links[k].bandwidth_bytes_per_sec);
    EXPECT_GT(inputs[1].env.links[k].latency_sec,
              inputs[0].env.links[k].latency_sec);
    EXPECT_LT(inputs[2].env.links[k].bandwidth_bytes_per_sec,
              inputs[1].env.links[k].bandwidth_bytes_per_sec);
    EXPECT_GT(inputs[2].env.links[k].latency_sec,
              inputs[1].env.links[k].latency_sec);
  }
  // A placement that crosses links therefore costs monotonically more as
  // the substrate gets heavier: thread < proc < tcp.
  const Placement baseline = default_placement(inputs[0]);
  const double t_thread =
      full_pipeline_time(inputs[0], baseline, options.n_packets);
  const double t_proc =
      full_pipeline_time(inputs[1], baseline, options.n_packets);
  const double t_tcp =
      full_pipeline_time(inputs[2], baseline, options.n_packets);
  EXPECT_LT(t_thread, t_proc);
  EXPECT_LT(t_proc, t_tcp);
}

TEST(TransportCost, BatchingAmortizesFrameOverhead) {
  const apps::AppConfig config = apps::tiny_config(256, 8);
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.backend = "tcp";
  CompileResult compiled = compile_pipeline(config.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.diagnostics;
  options.batch_size = 1;
  const DecompositionInput unbatched =
      make_decomposition_input(compiled.model, options.env, options);
  options.batch_size = 16;
  const DecompositionInput batched =
      make_decomposition_input(compiled.model, options.env, options);
  for (std::size_t k = 0; k < unbatched.env.links.size(); ++k) {
    // The per-frame term is per enqueue: coalescing 16 packets into one
    // frame divides it by 16. The per-byte term is batch-invariant.
    EXPECT_LT(batched.env.links[k].latency_sec,
              unbatched.env.links[k].latency_sec);
    EXPECT_DOUBLE_EQ(batched.env.links[k].bandwidth_bytes_per_sec,
                     unbatched.env.links[k].bandwidth_bytes_per_sec);
  }
}

TEST(OpCount, CallsCountedInterprocedurally) {
  CountFixture f = prepare(R"(
    class A {
      double heavy(double v) {
        double acc = v;
        foreach (i in [0 : 9]) { acc = acc * 1.01; }
        return acc;
      }
      void f(double[] xs) {
        foreach (i in [0 : 9]) {
          xs[i] = heavy(xs[i]);
        }
      }
    }
  )");
  SizeEnv sizes(f.registry);
  OpCounter counter(f.registry, sizes);
  OpCounts counts = counter.count_stmts(stmts_of(f));
  // 10 outer x 10 inner multiplies at least.
  EXPECT_GE(counts.float_ops, 100.0);
}

TEST(OpCount, IntrinsicLatencies) {
  CountFixture f = prepare(R"(
    class A {
      void f(double v) {
        double a = sqrt(v);
        double b = v + 1.0;
      }
    }
  )");
  SizeEnv sizes(f.registry);
  OpCounter counter(f.registry, sizes);
  OpCounts counts = counter.count_stmts(stmts_of(f));
  EXPECT_GE(counts.float_ops, 15.0);  // sqrt latency table
}

}  // namespace
}  // namespace cgp
