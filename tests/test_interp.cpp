// Interpreter unit tests: evaluation, control flow, methods, reductions,
// runtime errors, op counting.
#include <gtest/gtest.h>

#include "codegen/interp.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

struct Fixture {
  std::unique_ptr<Program> program;
  ClassRegistry registry;
};

Fixture prepare(std::string_view source) {
  Fixture fixture;
  DiagnosticEngine diags;
  fixture.program = Parser::parse(source, diags);
  Sema sema(*fixture.program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  fixture.registry = std::move(result.registry);
  return fixture;
}

double get_double(const Env& env, const std::string& name) {
  return as_double(env.get(name));
}

std::int64_t get_int(const Env& env, const std::string& name) {
  return as_int(env.get(name));
}

TEST(Interp, Arithmetic) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int a = 2 + 3 * 4;
        int b = (2 + 3) * 4;
        int c = 17 % 5;
        double d = 7.0 / 2.0;
        int e = 7 / 2;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "a"), 14);
  EXPECT_EQ(get_int(env, "b"), 20);
  EXPECT_EQ(get_int(env, "c"), 2);
  EXPECT_DOUBLE_EQ(get_double(env, "d"), 3.5);
  EXPECT_EQ(get_int(env, "e"), 3);
}

TEST(Interp, ControlFlow) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int total = 0;
        for (int i = 0; i < 10; i++) {
          if (i % 2 == 0) { continue; }
          if (i == 9) { break; }
          total = total + i;   // 1+3+5+7
        }
        int loops = 0;
        while (loops < 5) { loops++; }
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "total"), 16);
  EXPECT_EQ(get_int(env, "loops"), 5);
}

TEST(Interp, ForeachOverRectdomainAndArray) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double[] xs = new double[5];
        foreach (i in [0 : 4]) { xs[i] = i * 1.5; }
        double total = 0.0;
        foreach (v in xs) { total = total + v; }
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_DOUBLE_EQ(get_double(env, "total"), 15.0);
}

TEST(Interp, MethodsAndConstructors) {
  Fixture f = prepare(R"(
    class Counter {
      int value;
      Counter(int start) { value = start; }
      void bump(int by) { value = value + by; }
      int get() { return value; }
    }
    class A {
      void main() {
        Counter c = new Counter(10);
        c.bump(5);
        c.bump(-2);
        int result = c.get();
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "result"), 13);
}

TEST(Interp, UnqualifiedFieldAndMethodAccess) {
  Fixture f = prepare(R"(
    class A {
      int x;
      int twice() { return x * 2; }
      void run() { x = 21; }
    }
    class B {
      void main() {
        A a = new A();
        a.run();
        int result = a.twice();
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("B", "main");
  EXPECT_EQ(get_int(env, "result"), 42);
}

TEST(Interp, Intrinsics) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double a = sqrt(16.0);
        double b = max(2.0, 3.5);
        int c = min(7, 4);
        double d = abs(-2.5);
        double e = floor(3.9);
        double g = pow(2.0, 8.0);
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_DOUBLE_EQ(get_double(env, "a"), 4.0);
  EXPECT_DOUBLE_EQ(get_double(env, "b"), 3.5);
  EXPECT_EQ(get_int(env, "c"), 4);
  EXPECT_DOUBLE_EQ(get_double(env, "d"), 2.5);
  EXPECT_DOUBLE_EQ(get_double(env, "e"), 3.0);
  EXPECT_DOUBLE_EQ(get_double(env, "g"), 256.0);
}

TEST(Interp, RuntimeConstants) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int n = runtime_define_n * 2;
      }
    }
  )");
  Interpreter interp(f.registry, {{"runtime_define_n", 21}});
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "n"), 42);
}

TEST(Interp, UnboundRuntimeConstantThrows) {
  Fixture f = prepare(R"(
    class A { void main() { int n = runtime_define_n; } }
  )");
  Interpreter interp(f.registry);
  EXPECT_THROW(interp.run("A", "main"), InterpError);
}

TEST(Interp, PipelinedLoopSequentialSemantics) {
  Fixture f = prepare(R"(
    interface Reducinterface { }
    class Acc implements Reducinterface {
      double total;
      Acc() { total = 0.0; }
      void add(double v) { total = total + v; }
    }
    class A {
      void main() {
        Acc acc = new Acc();
        PipelinedLoop (p in [0 : 3]) {
          acc.add(p * 1.0);
        }
        double result = acc.total;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_DOUBLE_EQ(get_double(env, "result"), 6.0);
}

TEST(Interp, PipelinedHookIntercepts) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int ran = 0;
        PipelinedLoop (p in [0 : 3]) {
          ran = ran + 1;
        }
      }
    }
  )");
  Interpreter interp(f.registry);
  int hooked = 0;
  interp.set_pipelined_hook([&](const PipelinedLoopStmt&, Env&) {
    ++hooked;
    return true;
  });
  Env env = interp.run("A", "main");
  EXPECT_EQ(hooked, 1);
  EXPECT_EQ(get_int(env, "ran"), 0);  // body skipped
}

TEST(Interp, IndexOutOfRangeThrows) {
  Fixture f = prepare(R"(
    class A { void main() { int[] xs = new int[3]; int v = xs[5]; } }
  )");
  Interpreter interp(f.registry);
  EXPECT_THROW(interp.run("A", "main"), InterpError);
}

TEST(Interp, BaseIndexedArrayAccess) {
  Fixture f = prepare(R"(
    class A {
      int read(int[] xs, int i) { return xs[i]; }
    }
  )");
  Interpreter interp(f.registry);
  auto arr = std::make_shared<ArrayVal>();
  arr->base_index = 100;
  arr->elems = {Value{std::int64_t{7}}, Value{std::int64_t{8}}};
  auto obj = interp.construct("A", {});
  EXPECT_EQ(as_int(interp.call_method("A", "read", obj, {arr, std::int64_t{101}})),
            8);
  EXPECT_THROW(interp.call_method("A", "read", obj, {arr, std::int64_t{99}}),
               InterpError);
}

TEST(Interp, NullFieldAccessThrows) {
  Fixture f = prepare(R"(
    class B { int x; }
    class A { void main() { B b = null; int v = b.x; } }
  )");
  Interpreter interp(f.registry);
  EXPECT_THROW(interp.run("A", "main"), InterpError);
}

TEST(Interp, DivisionByZeroThrows) {
  Fixture f = prepare(R"(
    class A { void main() { int z = 0; int v = 3 / z; } }
  )");
  Interpreter interp(f.registry);
  EXPECT_THROW(interp.run("A", "main"), InterpError);
}

TEST(Interp, OpsCounted) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double total = 0.0;
        foreach (i in [0 : 99]) { total = total + i * 1.0; }
      }
    }
  )");
  Interpreter interp(f.registry);
  interp.run("A", "main");
  // 100 iterations of (mul + add + mem + loop overhead): at least 400.
  EXPECT_GT(interp.ops(), 400.0);
  double first = interp.ops();
  interp.reset_ops();
  EXPECT_EQ(interp.ops(), 0.0);
  interp.run("A", "main");
  EXPECT_DOUBLE_EQ(interp.ops(), first);  // deterministic counting
}

TEST(Interp, RectdomainAccessors) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        Rectdomain<1> d = [3 : 11];
        long n = d.size();
        int lo = d.lo();
        int hi = d.hi();
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "n"), 9);
  EXPECT_EQ(get_int(env, "lo"), 3);
  EXPECT_EQ(get_int(env, "hi"), 11);
}

TEST(Interp, EmptyRectdomainLoopsZeroTimes) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int count = 0;
        foreach (i in [5 : 2]) { count = count + 1; }
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "count"), 0);
}

TEST(Interp, FloatFieldsRoundToFloat32) {
  Fixture f = prepare(R"(
    class P { float x; }
    class A {
      void main() {
        P p = new P();
        p.x = 0.1;
        double delta = p.x - 0.1;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  // 0.1 is not representable in float32: the store must round.
  EXPECT_NE(get_double(env, "delta"), 0.0);
  EXPECT_NEAR(get_double(env, "delta"),
              static_cast<double>(0.1f) - 0.1, 1e-12);
}

TEST(Interp, ConditionalExpression) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int a = 5 > 3 ? 10 : 20;
        int b = 5 < 3 ? 10 : 20;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "a"), 10);
  EXPECT_EQ(get_int(env, "b"), 20);
}

TEST(Interp, IncDecSemantics) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        int i = 5;
        int a = i++;
        int b = ++i;
        int c = i--;
        int d = --i;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "a"), 5);
  EXPECT_EQ(get_int(env, "b"), 7);
  EXPECT_EQ(get_int(env, "c"), 7);
  EXPECT_EQ(get_int(env, "d"), 5);
}

TEST(Interp, CompoundAssignment) {
  Fixture f = prepare(R"(
    class A {
      void main() {
        double x = 10.0;
        x += 2.0;
        x *= 3.0;
        x -= 6.0;
        x /= 5.0;
        int y = 7;
        y += 3;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_DOUBLE_EQ(get_double(env, "x"), 6.0);
  EXPECT_EQ(get_int(env, "y"), 10);
}

TEST(Interp, ShortCircuitEvaluation) {
  Fixture f = prepare(R"(
    class A {
      int calls;
      boolean bump() { calls = calls + 1; return true; }
      void main() {
        A a = new A();
        boolean r1 = false && a.bump();
        boolean r2 = true || a.bump();
        int count = a.calls;
      }
    }
  )");
  Interpreter interp(f.registry);
  Env env = interp.run("A", "main");
  EXPECT_EQ(get_int(env, "count"), 0);
}

}  // namespace
}  // namespace cgp
