// Driver facade tests: full compile flow, diagnostics, decomposition
// artifacts, simulate bridge, failure injection — plus CLI-surface tests
// that spawn the real cgpc binary (CGPC_BINARY, injected by CMake).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>

#include "apps/app_configs.h"
#include "driver/compiler.h"
#include "driver/simulate.h"

namespace cgp {
namespace {

CompileOptions options_for(const apps::AppConfig& config, int width = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return options;
}

TEST(Driver, ParseErrorSurfaces) {
  CompileResult result = compile_pipeline("class {", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("parser"), std::string::npos);
}

TEST(Driver, SemaErrorSurfaces) {
  CompileResult result = compile_pipeline(
      "class A { void main() { x = 1; } }", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("sema"), std::string::npos);
}

TEST(Driver, MissingPipelinedLoopSurfaces) {
  CompileResult result = compile_pipeline(
      "class A { void main() { int x = 1; } }", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("no PipelinedLoop"), std::string::npos);
}

TEST(Driver, ProducesBothDecompositions) {
  apps::AppConfig config = apps::tiny_config(256, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.dp_figure3.placement.unit_of_filter.size(),
            result.model.filters.size());
  EXPECT_EQ(result.decomposition.placement.unit_of_filter.size(),
            result.model.filters.size());
  // The total-time optimum is never worse than the latency-DP placement
  // when evaluated on the total-time objective.
  double dp_total = full_pipeline_time(result.decomp_input,
                                       result.dp_figure3.placement, 8);
  double opt_total = full_pipeline_time(result.decomp_input,
                                        result.decomposition.placement, 8);
  EXPECT_LE(opt_total, dp_total + 1e-12);
}

TEST(Driver, DecompInputDimensions) {
  apps::AppConfig config = apps::knn_config(3);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.decomp_input.task_ops.size(), result.model.filters.size());
  EXPECT_EQ(result.decomp_input.boundary_bytes.size(),
            result.model.filters.size());
  EXPECT_GT(result.decomp_input.input_bytes, 0.0);
  EXPECT_GT(result.decomp_input.source_io_ops, 0.0);
  EXPECT_EQ(result.decomp_input.updates_reduction.size(),
            result.model.filters.size());
  // knn updates the KnnResult reduction: replica estimates must be set.
  EXPECT_GT(result.decomp_input.replica_payload_bytes, 0.0);
  EXPECT_GT(result.decomp_input.replica_merge_ops, 0.0);
}

TEST(Driver, ReductionEpilogueGrowsWithEarlierPlacement) {
  apps::AppConfig config = apps::tiny_config(256, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config, 4));
  ASSERT_TRUE(result.ok);
  // Placing the reduction-updating filter on stage 0 (4 copies, 2 hops)
  // must cost at least as much epilogue as on the last stage (none).
  Placement early;
  early.unit_of_filter.assign(result.model.filters.size(), 0);
  Placement late;
  late.unit_of_filter.assign(result.model.filters.size(), 2);
  double epi_early = reduction_epilogue_time(result.decomp_input, early);
  double epi_late = reduction_epilogue_time(result.decomp_input, late);
  EXPECT_GT(epi_early, 0.0);
  EXPECT_DOUBLE_EQ(epi_late, 0.0);
}

TEST(Driver, InvalidPlacementArityThrows) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  Placement bogus;
  bogus.unit_of_filter = {0};  // wrong arity
  EXPECT_THROW(result.make_runner(bogus, EnvironmentSpec::paper_cluster(1)),
               std::invalid_argument);
}

TEST(Driver, FissionToggle) {
  apps::AppConfig config = apps::isosurface_zbuffer_config(false);
  CompileOptions with = options_for(config);
  CompileOptions without = options_for(config);
  without.apply_fission = false;
  CompileResult fissioned = compile_pipeline(config.source, with);
  CompileResult plain = compile_pipeline(config.source, without);
  ASSERT_TRUE(fissioned.ok);
  ASSERT_TRUE(plain.ok);
  // Fission exposes more candidate boundaries.
  EXPECT_GT(fissioned.model.filters.size(), plain.model.filters.size());
}

TEST(Driver, SimulateBridge) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config, 2));
  ASSERT_TRUE(result.ok);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(2);
  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, env).run();
  SimResult sim = simulate_run_full(run, env);
  EXPECT_GT(sim.total_time, 0.0);
  EXPECT_FALSE(sim.bottleneck_name.empty());
  // Epilogue split: per-copy ops are totals / copies.
  SimEpilogue epilogue = make_epilogue(run, env);
  ASSERT_EQ(epilogue.per_copy_stage_ops.size(), 3u);
  EXPECT_DOUBLE_EQ(epilogue.per_copy_stage_ops[1] * env.units[1].copies,
                   run.stage_replica_ops[1]);
}

TEST(Driver, WiderEnvironmentSimulatesFaster) {
  apps::AppConfig config = apps::knn_config(3);
  double previous = 1e30;
  for (int width : {1, 2, 4}) {
    CompileResult result =
        compile_pipeline(config.source, options_for(config, width));
    ASSERT_TRUE(result.ok);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    PipelineRunResult run =
        result.make_runner(result.decomposition.placement, env).run();
    double t = simulate_run(run, env);
    EXPECT_LT(t, previous * 1.02) << "width " << width;  // monotone-ish
    previous = t;
  }
}

// ---- cgpc CLI surface -----------------------------------------------------

struct CliResult {
  int status = -1;        // process exit code, or -1 on abnormal exit
  std::string output;     // stdout + stderr, interleaved
};

/// Runs the real cgpc binary with `args` appended, capturing both output
/// streams and the exit code.
CliResult run_cgpc(const std::string& args) {
  CliResult result;
  const std::string command = std::string(CGPC_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  if (!pipe) return result;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, pipe)) > 0)
    result.output.append(chunk, n);
  const int raw = pclose(pipe);
  if (raw >= 0 && WIFEXITED(raw)) result.status = WEXITSTATUS(raw);
  return result;
}

class CgpcCli : public ::testing::Test {
 protected:
  static constexpr const char* kSourcePath = "cgp_driver_cli_tiny.cgp";

  static void SetUpTestSuite() {
    std::ofstream out(kSourcePath);
    out << apps::tiny_config(64, 8).source;
  }
  static void TearDownTestSuite() { std::remove(kSourcePath); }

  /// --define/--bind arguments matching the tiny app's configuration.
  static std::string binding_args() {
    const apps::AppConfig config = apps::tiny_config(64, 8);
    std::string args;
    // Quoted: binding names like "len(values)" are shell metacharacters.
    for (const auto& [name, value] : config.runtime_constants)
      args += " --define '" + name + "=" + std::to_string(value) + "'";
    for (const auto& [name, value] : config.size_bindings)
      args += " --bind '" + name + "=" + std::to_string(value) + "'";
    return args;
  }
};

TEST_F(CgpcCli, UnknownBackendRejected) {
  const CliResult r = run_cgpc(std::string(kSourcePath) + " --backend=mpi");
  EXPECT_EQ(r.status, 2) << r.output;
  EXPECT_NE(r.output.find("unknown backend 'mpi'"), std::string::npos)
      << r.output;
}

TEST_F(CgpcCli, ProcBackendRejectsFaultInject) {
  const CliResult r = run_cgpc(std::string(kSourcePath) +
                               " --backend=proc --fault-inject=stage1:throw@5");
  EXPECT_EQ(r.status, 2) << r.output;
  EXPECT_NE(r.output.find("--fault-inject"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("--backend=proc"), std::string::npos) << r.output;
}

TEST_F(CgpcCli, TcpStageTimeoutRequiresHeartbeat) {
  // No longer a hard conflict: --stage-timeout is legal on process
  // backends, but only with heartbeats (that is where the supervisor
  // samples worker progress from). Without --heartbeat-ms it exits 2 with
  // a diagnostic naming the cure.
  const CliResult r = run_cgpc(std::string(kSourcePath) +
                               " --backend=tcp --stage-timeout=2");
  EXPECT_EQ(r.status, 2) << r.output;
  EXPECT_NE(r.output.find("--stage-timeout"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("--heartbeat-ms"), std::string::npos) << r.output;
}

TEST_F(CgpcCli, ConflictsReportedTogetherInFlagOrder) {
  const CliResult r = run_cgpc(std::string(kSourcePath) +
                               " --backend=tcp --fault-seed=7 "
                               "--fault-inject=stage0:throw@1");
  EXPECT_EQ(r.status, 2) << r.output;
  // One diagnostic per conflicting option, in command-line order.
  const std::size_t seed_at = r.output.find("--fault-seed");
  const std::size_t inject_at = r.output.find("--fault-inject");
  EXPECT_NE(seed_at, std::string::npos) << r.output;
  EXPECT_NE(inject_at, std::string::npos) << r.output;
  EXPECT_LT(seed_at, inject_at) << r.output;
}

TEST_F(CgpcCli, WorkerRestartsRejectsGarbage) {
  for (const char* bad : {"--worker-restarts=two", "--worker-restarts=-1",
                          "--worker-restarts="}) {
    const CliResult r =
        run_cgpc(std::string(kSourcePath) + " --backend=proc " + bad);
    EXPECT_EQ(r.status, 2) << bad << ": " << r.output;
    EXPECT_NE(r.output.find("--worker-restarts expects an integer"),
              std::string::npos)
        << r.output;
  }
}

TEST_F(CgpcCli, HeartbeatMsRejectsGarbage) {
  for (const char* bad :
       {"--heartbeat-ms=fast", "--heartbeat-ms=0", "--heartbeat-ms=2.5"}) {
    const CliResult r =
        run_cgpc(std::string(kSourcePath) + " --backend=tcp " + bad);
    EXPECT_EQ(r.status, 2) << bad << ": " << r.output;
    EXPECT_NE(r.output.find("--heartbeat-ms expects an integer"),
              std::string::npos)
        << r.output;
  }
}

TEST_F(CgpcCli, TeardownGraceMsRejectsGarbage) {
  const CliResult r = run_cgpc(std::string(kSourcePath) +
                               " --backend=proc --teardown-grace-ms=-5");
  EXPECT_EQ(r.status, 2) << r.output;
  EXPECT_NE(r.output.find("--teardown-grace-ms expects an integer"),
            std::string::npos)
      << r.output;
}

TEST_F(CgpcCli, ProcBackendRunsPipelineEndToEnd) {
  const CliResult r = run_cgpc(std::string(kSourcePath) + binding_args() +
                               " --backend=proc --run --packets 8");
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("ran 8 packets"), std::string::npos) << r.output;
  // The group-state codec must fold worker-side telemetry back into the
  // supervisor's result: a zero byte count on the first link would mean
  // the forked source's counters were dropped.
  EXPECT_NE(r.output.find("link 0:"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("link 0: 0 packet bytes"), std::string::npos)
      << r.output;
}

}  // namespace
}  // namespace cgp
