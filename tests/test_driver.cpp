// Driver facade tests: full compile flow, diagnostics, decomposition
// artifacts, simulate bridge, failure injection.
#include <gtest/gtest.h>

#include "apps/app_configs.h"
#include "driver/compiler.h"
#include "driver/simulate.h"

namespace cgp {
namespace {

CompileOptions options_for(const apps::AppConfig& config, int width = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return options;
}

TEST(Driver, ParseErrorSurfaces) {
  CompileResult result = compile_pipeline("class {", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("parser"), std::string::npos);
}

TEST(Driver, SemaErrorSurfaces) {
  CompileResult result = compile_pipeline(
      "class A { void main() { x = 1; } }", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("sema"), std::string::npos);
}

TEST(Driver, MissingPipelinedLoopSurfaces) {
  CompileResult result = compile_pipeline(
      "class A { void main() { int x = 1; } }", CompileOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("no PipelinedLoop"), std::string::npos);
}

TEST(Driver, ProducesBothDecompositions) {
  apps::AppConfig config = apps::tiny_config(256, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.dp_figure3.placement.unit_of_filter.size(),
            result.model.filters.size());
  EXPECT_EQ(result.decomposition.placement.unit_of_filter.size(),
            result.model.filters.size());
  // The total-time optimum is never worse than the latency-DP placement
  // when evaluated on the total-time objective.
  double dp_total = full_pipeline_time(result.decomp_input,
                                       result.dp_figure3.placement, 8);
  double opt_total = full_pipeline_time(result.decomp_input,
                                        result.decomposition.placement, 8);
  EXPECT_LE(opt_total, dp_total + 1e-12);
}

TEST(Driver, DecompInputDimensions) {
  apps::AppConfig config = apps::knn_config(3);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.decomp_input.task_ops.size(), result.model.filters.size());
  EXPECT_EQ(result.decomp_input.boundary_bytes.size(),
            result.model.filters.size());
  EXPECT_GT(result.decomp_input.input_bytes, 0.0);
  EXPECT_GT(result.decomp_input.source_io_ops, 0.0);
  EXPECT_EQ(result.decomp_input.updates_reduction.size(),
            result.model.filters.size());
  // knn updates the KnnResult reduction: replica estimates must be set.
  EXPECT_GT(result.decomp_input.replica_payload_bytes, 0.0);
  EXPECT_GT(result.decomp_input.replica_merge_ops, 0.0);
}

TEST(Driver, ReductionEpilogueGrowsWithEarlierPlacement) {
  apps::AppConfig config = apps::tiny_config(256, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config, 4));
  ASSERT_TRUE(result.ok);
  // Placing the reduction-updating filter on stage 0 (4 copies, 2 hops)
  // must cost at least as much epilogue as on the last stage (none).
  Placement early;
  early.unit_of_filter.assign(result.model.filters.size(), 0);
  Placement late;
  late.unit_of_filter.assign(result.model.filters.size(), 2);
  double epi_early = reduction_epilogue_time(result.decomp_input, early);
  double epi_late = reduction_epilogue_time(result.decomp_input, late);
  EXPECT_GT(epi_early, 0.0);
  EXPECT_DOUBLE_EQ(epi_late, 0.0);
}

TEST(Driver, InvalidPlacementArityThrows) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  Placement bogus;
  bogus.unit_of_filter = {0};  // wrong arity
  EXPECT_THROW(result.make_runner(bogus, EnvironmentSpec::paper_cluster(1)),
               std::invalid_argument);
}

TEST(Driver, FissionToggle) {
  apps::AppConfig config = apps::isosurface_zbuffer_config(false);
  CompileOptions with = options_for(config);
  CompileOptions without = options_for(config);
  without.apply_fission = false;
  CompileResult fissioned = compile_pipeline(config.source, with);
  CompileResult plain = compile_pipeline(config.source, without);
  ASSERT_TRUE(fissioned.ok);
  ASSERT_TRUE(plain.ok);
  // Fission exposes more candidate boundaries.
  EXPECT_GT(fissioned.model.filters.size(), plain.model.filters.size());
}

TEST(Driver, SimulateBridge) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config, 2));
  ASSERT_TRUE(result.ok);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(2);
  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, env).run();
  SimResult sim = simulate_run_full(run, env);
  EXPECT_GT(sim.total_time, 0.0);
  EXPECT_FALSE(sim.bottleneck_name.empty());
  // Epilogue split: per-copy ops are totals / copies.
  SimEpilogue epilogue = make_epilogue(run, env);
  ASSERT_EQ(epilogue.per_copy_stage_ops.size(), 3u);
  EXPECT_DOUBLE_EQ(epilogue.per_copy_stage_ops[1] * env.units[1].copies,
                   run.stage_replica_ops[1]);
}

TEST(Driver, WiderEnvironmentSimulatesFaster) {
  apps::AppConfig config = apps::knn_config(3);
  double previous = 1e30;
  for (int width : {1, 2, 4}) {
    CompileResult result =
        compile_pipeline(config.source, options_for(config, width));
    ASSERT_TRUE(result.ok);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    PipelineRunResult run =
        result.make_runner(result.decomposition.placement, env).run();
    double t = simulate_run(run, env);
    EXPECT_LT(t, previous * 1.02) << "width " << width;  // monotone-ish
    previous = t;
  }
}

}  // namespace
}  // namespace cgp
