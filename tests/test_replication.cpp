// Replicated-stage stress tests (ROADMAP item 1): hand-built pipelines
// whose middle stage runs several transparent copies, driven hard under
// fault injection and restarts. The ReplicationStress_* cases are the CI
// replication job's until-fail targets (Release + TSan, repeated): a race
// between competing copies — a double-pop, a lost in-flight packet during
// a copy restart, a replica merge that drops a contribution — shows up as
// a multiset mismatch or a sanitizer report.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/runner.h"
#include "support/faultinject.h"

namespace cgp::dc {
namespace {

FaultPolicy policy_for(FaultAction action, int max_retries = 3) {
  FaultPolicy policy;
  policy.action = action;
  policy.max_retries = max_retries;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  return policy;
}

class CountingSource : public Filter {
 public:
  explicit CountingSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      // Round-robin domain split across transparent copies — the scheme
      // the compiler emits for a replicated data host.
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
    }
  }

 private:
  int n_;
};

class AddOne : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }
  bool snapshot_state(Buffer&) override { return true; }  // stateless
};

struct SinkState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;
};

class CollectingSink : public Filter {
 public:
  explicit CollectingSink(std::shared_ptr<SinkState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      std::lock_guard lock(state_->mutex);
      state_->values.insert(v);
    }
  }

 private:
  std::shared_ptr<SinkState> state_;
};

FilterGroup source_group(const char* name, int n, int copies, int stage) {
  return {name, [n] { return std::make_unique<CountingSource>(n); }, copies,
          stage};
}
FilterGroup addone_group(const char* name, int copies, int stage) {
  return {name, [] { return std::make_unique<AddOne>(); }, copies, stage};
}
FilterGroup sink_group(const char* name, std::shared_ptr<SinkState> state,
                       int stage) {
  return {name, [state] { return std::make_unique<CollectingSink>(state); },
          1, stage};
}

std::multiset<std::int64_t> expected_values(int n, std::int64_t offset) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.insert(i + offset);
  return out;
}

TEST(ReplicationStress, ReplicatedWorkerDeliversExactMultiset) {
  // source -> 4-copy worker -> sink: the copies compete for input packets
  // on the shared stream; every packet must surface exactly once.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 512, 1, 0));
  groups.push_back(addone_group("mid", 4, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(512, 1));
  ASSERT_EQ(outcome.stats.group_copies.size(), 3u);
  EXPECT_EQ(outcome.stats.group_copies[1], 4);
}

TEST(ReplicationStress, RoundRobinSourcesCoverTheDomain) {
  // A replicated data host splits the packet domain round-robin; nothing
  // may be emitted twice or skipped, even through a replicated middle.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 384, 4, 0));
  groups.push_back(addone_group("mid", 2, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 2);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(384, 1));
}

TEST(ReplicationStress, FaultedReplicaRestartsWithoutLoss) {
  // Positional fault counters are per copy: every competing copy that
  // reaches its own 7th packet throws under restart-copy, and the
  // supervisor replays each in-flight packet on the restarted instance
  // while the siblings keep draining the stream.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 256, 1, 0));
  groups.push_back(addone_group("mid", 4, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@7")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(256, 1));
  ASSERT_GE(outcome.stats.faults.size(), 1u);
  for (const support::FaultRecord& fault : outcome.stats.faults) {
    EXPECT_EQ(fault.group, "mid");
  }
  EXPECT_EQ(outcome.stats.total_dropped_packets(), 0);
}

TEST(ReplicationStress, RepeatedFaultsAcrossReplicasAllRecover) {
  // A refiring positional fault hits every restarted copy at its own
  // packet 3 — several copies take hits over the run, and each replayed
  // packet must still surface exactly once.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 320, 1, 0));
  groups.push_back(addone_group("mid", 3, 1));
  groups.push_back(sink_group("sink", state, 2));
  PipelineRunner runner(std::move(groups), 4,
                        policy_for(FaultAction::kRestartCopy, 8));
  runner.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("mid:throw@3!")));
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(320, 1));
  EXPECT_GE(outcome.stats.total_retries(), 1);
}

TEST(ReplicationStress, TwoReplicatedStagesBackToBack) {
  // Two adjacent replicated stages with a tight stream between them: the
  // narrow capacity forces constant producer/consumer contention among
  // all copies on both ends.
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(source_group("src", 512, 2, 0));
  groups.push_back(addone_group("mid1", 4, 1));
  groups.push_back(addone_group("mid2", 4, 2));
  groups.push_back(sink_group("sink", state, 3));
  PipelineRunner runner(std::move(groups), 1);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(512, 2));
}

}  // namespace
}  // namespace cgp::dc
