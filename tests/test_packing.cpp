// Packing layout planning + codec tests (§5).
#include <gtest/gtest.h>

#include <cstring>

#include "codegen/packing.h"

namespace cgp {
namespace {

ClassRegistry make_registry() {
  ClassRegistry registry;
  ClassInfo tri;
  tri.name = "Tri";
  tri.fields = {FieldInfo{"x", Type::primitive(PrimKind::Float), 0},
                FieldInfo{"y", Type::primitive(PrimKind::Float), 1},
                FieldInfo{"val", Type::primitive(PrimKind::Float), 2}};
  registry.add(tri);
  return registry;
}

ValueEntry elem_entry(TypePtr type, std::int64_t lo, std::int64_t hi) {
  return ValueEntry{std::move(type),
                    RectSection::dim1(SymPoly(lo), SymPoly(hi))};
}

TEST(Packing, FieldsConsumedTogetherAreInstanceWise) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet next_cons = req;  // both consumed immediately
  PackingLayout layout = plan_packing(req, {next_cons}, registry);
  ASSERT_EQ(layout.groups.size(), 1u);
  EXPECT_TRUE(layout.groups[0].instancewise);
  EXPECT_EQ(layout.groups[0].items.size(), 2u);
}

TEST(Packing, LaterConsumedFieldIsFieldWise) {
  // §5: a field used by the receiving filter packs instance-wise; a field
  // only re-forwarded packs field-wise.
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {kElemStep, "val"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet stage0_cons;
  stage0_cons.add(ValueId{"tris", {kElemStep, "x"}},
                  elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet stage1_cons;
  stage1_cons.add(ValueId{"tris", {kElemStep, "val"}},
                  elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  PackingLayout layout =
      plan_packing(req, {stage0_cons, stage1_cons}, registry);
  ASSERT_EQ(layout.groups.size(), 2u);
  EXPECT_TRUE(layout.groups[0].instancewise);
  EXPECT_EQ(layout.groups[0].items[0].id.steps.back(), "x");
  EXPECT_FALSE(layout.groups[1].instancewise);
  EXPECT_EQ(layout.groups[1].items[0].id.steps.back(), "val");
}

TEST(Packing, WholeElementExpandsToReducedFields) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep}},
          elem_entry(Type::class_type("Tri"), 0, 4));
  PackingLayout layout = plan_packing(req, {req}, registry);
  ASSERT_EQ(layout.groups.size(), 1u);
  EXPECT_EQ(layout.groups[0].items.size(), 3u);  // x, y, val
}

TEST(Packing, LengthEntriesDropped) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {"length"}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  EXPECT_TRUE(layout.header.empty());
  EXPECT_EQ(layout.groups.size(), 1u);
}

TEST(Packing, RootedHeaderCollapses) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"pz", {"depth"}},
          ValueEntry{Type::array_of(Type::primitive(PrimKind::Float)), {}});
  req.add(ValueId{"pz", {"color"}},
          ValueEntry{Type::array_of(Type::primitive(PrimKind::Float)), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  ASSERT_EQ(layout.header.size(), 1u);
  EXPECT_EQ(layout.header[0].id.to_string(), "pz");
}

TEST(Packing, ScalarsStayInHeader) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"nsel", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  req.add(ValueId{"isoval", {}},
          ValueEntry{Type::primitive(PrimKind::Double), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  EXPECT_EQ(layout.header.size(), 2u);
  EXPECT_TRUE(layout.groups.empty());
}

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

std::shared_ptr<ArrayVal> make_tris(const ClassRegistry& registry, int n,
                                    std::int64_t base = 0) {
  auto arr = std::make_shared<ArrayVal>();
  arr->base_index = base;
  const ClassInfo* info = registry.find("Tri");
  for (int i = 0; i < n; ++i) {
    auto obj = std::make_shared<Object>();
    obj->class_name = "Tri";
    obj->fields.resize(info->fields.size());
    obj->fields[0] = Value{static_cast<double>(i) + 0.25};
    obj->fields[1] = Value{static_cast<double>(i) * 2.0};
    obj->fields[2] = Value{static_cast<double>(i) - 0.5};
    arr->elems.push_back(obj);
  }
  return arr;
}

TEST(Packing, CodecInstanceWiseRoundTrip) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 4));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 4));
  req.add(ValueId{"count", {}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 5));
  sender.declare("count", Value{std::int64_t{5}});
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; }, buffer);

  Env receiver;
  codec.unpack(buffer, receiver);
  EXPECT_EQ(as_int(receiver.get("count")), 5);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  ASSERT_EQ(arr->elems.size(), 5u);
  const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[3]);
  EXPECT_NEAR(as_double(obj->fields[0]), 3.25, 1e-6);
  EXPECT_NEAR(as_double(obj->fields[1]), 6.0, 1e-6);
  // val was not packed: default-initialized.
  EXPECT_DOUBLE_EQ(as_double(obj->fields[2]), 0.0);
}

TEST(Packing, CodecSymbolicSectionResolved) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  SymPoly n = SymPoly::symbol("nsel");
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(0), n - 1)});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 10));
  dc::Buffer buffer;
  codec.pack(sender,
             [](const std::string& sym) -> std::optional<std::int64_t> {
               if (sym == "nsel") return 3;
               return std::nullopt;
             },
             buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->elems.size(), 3u);  // only [0:nsel-1] transmitted
}

TEST(Packing, CodecBaseShiftedSections) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  SymPoly p = SymPoly::symbol("p");
  // [p*4 : p*4+3] — the packet-relative idiom.
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(p * 4, p * 4 + 3)});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 16));
  dc::Buffer buffer;
  codec.pack(sender,
             [](const std::string& sym) -> std::optional<std::int64_t> {
               if (sym == "p") return 2;
               return std::nullopt;
             },
             buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->base_index, 8);
  ASSERT_EQ(arr->elems.size(), 4u);
  const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[0]);
  EXPECT_NEAR(as_double(obj->fields[0]), 8.25, 1e-6);  // element 8
}

TEST(Packing, CodecWholeCollectionFallback) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float), std::nullopt});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;
  sender.declare("tris", make_tris(registry, 7));
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; }, buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->elems.size(), 7u);
}

TEST(Packing, CodecMissingBindingThrows) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"count", {}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;  // count not declared
  dc::Buffer buffer;
  EXPECT_THROW(
      codec.pack(sender, [](const std::string&) { return std::nullopt; },
                 buffer),
      std::runtime_error);
}

TEST(Packing, CodecLayoutMismatchThrows) {
  ClassRegistry registry = make_registry();
  ValueSet req_a;
  req_a.add(ValueId{"a", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  ValueSet req_b;
  req_b.add(ValueId{"a", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  req_b.add(ValueId{"b", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  PacketCodec sender_codec(registry, plan_packing(req_a, {req_a}, registry));
  PacketCodec receiver_codec(registry, plan_packing(req_b, {req_b}, registry));
  Env sender;
  sender.declare("a", Value{std::int64_t{1}});
  dc::Buffer buffer;
  sender_codec.pack(sender, [](const std::string&) { return std::nullopt; },
                    buffer);
  Env receiver;
  EXPECT_THROW(receiver_codec.unpack(buffer, receiver), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Compiled group plans (zero-copy packing codegen)
// ---------------------------------------------------------------------------

/// Registry with a nested class: Part { Vec pos; int id; }, Vec { float x;
/// double y; } — exercises multi-step field chains and mixed leaf widths.
ClassRegistry make_nested_registry() {
  ClassRegistry registry;
  ClassInfo vec;
  vec.name = "Vec";
  vec.fields = {FieldInfo{"x", Type::primitive(PrimKind::Float), 0},
                FieldInfo{"y", Type::primitive(PrimKind::Double), 1}};
  registry.add(vec);
  ClassInfo part;
  part.name = "Part";
  part.fields = {FieldInfo{"pos", Type::class_type("Vec"), 0},
                 FieldInfo{"id", Type::primitive(PrimKind::Int), 1}};
  registry.add(part);
  return registry;
}

std::shared_ptr<ArrayVal> make_parts(int n) {
  auto arr = std::make_shared<ArrayVal>();
  for (int i = 0; i < n; ++i) {
    auto pos = std::make_shared<Object>();
    pos->class_name = "Vec";
    pos->fields = {Value{static_cast<double>(i) + 0.5},
                   Value{static_cast<double>(i) * 3.0}};
    auto obj = std::make_shared<Object>();
    obj->class_name = "Part";
    obj->fields = {Value{pos}, Value{std::int64_t{i * 7}}};
    arr->elems.push_back(obj);
  }
  return arr;
}

std::vector<unsigned char> bytes_of(const dc::Buffer& buffer) {
  const auto* data = reinterpret_cast<const unsigned char*>(buffer.data());
  return std::vector<unsigned char>(data, data + buffer.size());
}

TEST(CompiledPlan, PrimitiveLeavesAreEligible) {
  ClassRegistry registry = make_registry();
  PackGroup group;
  group.collection = "tris";
  group.items = {
      PackedItem{ValueId{"tris", {kElemStep, "x"}},
                 Type::primitive(PrimKind::Float), std::nullopt, 0},
      PackedItem{ValueId{"tris", {kElemStep, "val"}},
                 Type::primitive(PrimKind::Float), std::nullopt, 0}};
  GroupPlan plan = compile_group_plan(registry, group, "Tri");
  ASSERT_TRUE(plan.eligible);
  ASSERT_EQ(plan.leaves.size(), 2u);
  EXPECT_EQ(plan.stride, 8u);  // two float leaves
  EXPECT_EQ(plan.leaves[0].offset, 0u);
  EXPECT_EQ(plan.leaves[1].offset, 4u);
  EXPECT_EQ(plan.leaves[1].chain.size(), 1u);
  EXPECT_EQ(plan.leaves[1].chain[0], 2);  // Tri::val field index
}

TEST(CompiledPlan, WholeElementTransferIsIneligible) {
  ClassRegistry registry = make_registry();
  PackGroup group;
  group.collection = "tris";
  group.items = {PackedItem{ValueId{"tris", {kElemStep}},
                            Type::class_type("Tri"), std::nullopt, 0}};
  EXPECT_FALSE(compile_group_plan(registry, group, "Tri").eligible);
  // Unknown element class: nothing to resolve the chain against.
  group.items = {PackedItem{ValueId{"tris", {kElemStep, "x"}},
                            Type::primitive(PrimKind::Float), std::nullopt,
                            0}};
  EXPECT_FALSE(compile_group_plan(registry, group, "NoSuch").eligible);
}

TEST(CompiledPlan, NestedChainResolvesThroughRegistry) {
  ClassRegistry registry = make_nested_registry();
  PackGroup group;
  group.collection = "parts";
  group.items = {
      PackedItem{ValueId{"parts", {kElemStep, "pos", "y"}},
                 Type::primitive(PrimKind::Double), std::nullopt, 0},
      PackedItem{ValueId{"parts", {kElemStep, "id"}},
                 Type::primitive(PrimKind::Int), std::nullopt, 0}};
  GroupPlan plan = compile_group_plan(registry, group, "Part");
  ASSERT_TRUE(plan.eligible);
  EXPECT_EQ(plan.stride, 12u);  // double + int32
  ASSERT_EQ(plan.leaves[0].chain.size(), 2u);
  ASSERT_EQ(plan.leaves[0].nested.size(), 1u);
  EXPECT_EQ(plan.leaves[0].nested[0]->name, "Vec");
}

/// Packs `env` twice — compiled plans on, then the interpreted reference —
/// and requires bit-identical wire bytes; then unpacks each buffer with the
/// opposite path and spot-checks via the provided verifier.
void expect_codec_parity(const ClassRegistry& registry,
                         const PackingLayout& layout, Env& sender,
                         const SymbolResolver& resolve,
                         const std::function<void(Env&)>& verify) {
  PacketCodec codec(registry, layout);
  dc::Buffer compiled;
  codec.pack(sender, resolve, compiled);
  dc::Buffer interpreted;
  codec.pack_interpreted(sender, resolve, interpreted);
  ASSERT_EQ(bytes_of(compiled), bytes_of(interpreted));

  Env via_compiled;
  codec.unpack(interpreted, via_compiled);  // compiled scatter, ref bytes
  verify(via_compiled);
  Env via_interpreted;
  codec.unpack_interpreted(compiled, via_interpreted);
  verify(via_interpreted);
}

TEST(CompiledPlan, InstanceWisePackMatchesInterpreted) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 5));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 5));
  PackingLayout layout = plan_packing(req, {req}, registry);
  ASSERT_TRUE(layout.groups[0].instancewise);
  Env sender;
  sender.declare("tris", make_tris(registry, 6));
  expect_codec_parity(
      registry, layout, sender,
      [](const std::string&) { return std::nullopt; }, [](Env& env) {
        const auto& arr =
            std::get<std::shared_ptr<ArrayVal>>(env.get("tris"));
        ASSERT_EQ(arr->elems.size(), 6u);
        const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[4]);
        EXPECT_NEAR(as_double(obj->fields[0]), 4.25, 1e-6);
        EXPECT_NEAR(as_double(obj->fields[1]), 8.0, 1e-6);
      });
}

TEST(CompiledPlan, FieldWisePackMatchesInterpreted) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 7));
  req.add(ValueId{"tris", {kElemStep, "val"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 7));
  ValueSet now;
  now.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 7));
  ValueSet later;
  later.add(ValueId{"tris", {kElemStep, "val"}},
            elem_entry(Type::primitive(PrimKind::Float), 0, 7));
  PackingLayout layout = plan_packing(req, {now, later}, registry);
  ASSERT_EQ(layout.groups.size(), 2u);
  ASSERT_FALSE(layout.groups[1].instancewise);
  Env sender;
  sender.declare("tris", make_tris(registry, 8));
  expect_codec_parity(
      registry, layout, sender,
      [](const std::string&) { return std::nullopt; }, [](Env& env) {
        const auto& arr =
            std::get<std::shared_ptr<ArrayVal>>(env.get("tris"));
        ASSERT_EQ(arr->elems.size(), 8u);
        const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[7]);
        EXPECT_NEAR(as_double(obj->fields[0]), 7.25, 1e-6);
        EXPECT_NEAR(as_double(obj->fields[2]), 6.5, 1e-6);
      });
}

TEST(CompiledPlan, NestedClassesMatchInterpreted) {
  ClassRegistry registry = make_nested_registry();
  ValueSet req;
  req.add(ValueId{"parts", {kElemStep, "pos", "y"}},
          elem_entry(Type::primitive(PrimKind::Double), 0, 4));
  req.add(ValueId{"parts", {kElemStep, "id"}},
          elem_entry(Type::primitive(PrimKind::Int), 0, 4));
  PackingLayout layout = plan_packing(req, {req}, registry);
  Env sender;
  sender.declare("parts", make_parts(5));
  expect_codec_parity(
      registry, layout, sender,
      [](const std::string&) { return std::nullopt; }, [](Env& env) {
        const auto& arr =
            std::get<std::shared_ptr<ArrayVal>>(env.get("parts"));
        ASSERT_EQ(arr->elems.size(), 5u);
        const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[3]);
        const auto& pos = std::get<std::shared_ptr<Object>>(obj->fields[0]);
        EXPECT_DOUBLE_EQ(as_double(pos->fields[1]), 9.0);
        EXPECT_EQ(as_int(obj->fields[1]), 21);
      });
}

TEST(CompiledPlan, SectionedGroupMatchesInterpreted) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  SymPoly n = SymPoly::symbol("nsel");
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(2), n - 1)});
  PackingLayout layout = plan_packing(req, {req}, registry);
  Env sender;
  sender.declare("tris", make_tris(registry, 12));
  expect_codec_parity(
      registry, layout, sender,
      [](const std::string& sym) -> std::optional<std::int64_t> {
        if (sym == "nsel") return 9;
        return std::nullopt;
      },
      [](Env& env) {
        const auto& arr =
            std::get<std::shared_ptr<ArrayVal>>(env.get("tris"));
        EXPECT_EQ(arr->base_index, 2);
        ASSERT_EQ(arr->elems.size(), 7u);  // [2 : 8]
      });
}

TEST(CompiledPlan, EmptyCollectionMatchesInterpreted) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  PackingLayout layout = plan_packing(req, {req}, registry);
  Env sender;
  sender.declare("tris", make_tris(registry, 0));
  expect_codec_parity(
      registry, layout, sender,
      [](const std::string&) { return std::nullopt; }, [](Env& env) {
        const auto& arr =
            std::get<std::shared_ptr<ArrayVal>>(env.get("tris"));
        EXPECT_TRUE(arr->elems.empty());
      });
}

TEST(CompiledPlan, NullElementFallsBackToInterpretedBytes) {
  // A null element defeats the compiled gather mid-group; the pack must
  // rewind and produce the interpreted path's exact bytes (which serialize
  // the null as a default element) rather than corrupt output.
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 3));
  PackingLayout layout = plan_packing(req, {req}, registry);
  Env sender;
  auto arr = make_tris(registry, 4);
  arr->elems[2] = Value{std::shared_ptr<Object>{}};
  sender.declare("tris", arr);
  PacketCodec codec(registry, layout);
  dc::Buffer compiled;
  dc::Buffer interpreted;
  const SymbolResolver none = [](const std::string&) { return std::nullopt; };
  bool compiled_threw = false;
  bool interpreted_threw = false;
  try {
    codec.pack(sender, none, compiled);
  } catch (const std::exception&) {
    compiled_threw = true;
  }
  try {
    codec.pack_interpreted(sender, none, interpreted);
  } catch (const std::exception&) {
    interpreted_threw = true;
  }
  EXPECT_EQ(compiled_threw, interpreted_threw);
  if (!compiled_threw) EXPECT_EQ(bytes_of(compiled), bytes_of(interpreted));
}

// ---------------------------------------------------------------------------
// PackedView (zero-copy group views)
// ---------------------------------------------------------------------------

/// Single-item layouts for the same collection differing only in the
/// instance-wise flag — their serializations are byte-identical except for
/// that one byte, which is what makes PackedView's flag patching legal.
TEST(PackedView, SingleItemLayoutsDifferOnlyInFlagByte) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 5));
  PackingLayout instance = plan_packing(req, {req}, registry);
  ASSERT_TRUE(instance.groups[0].instancewise);
  PackingLayout field = instance;
  field.groups[0].instancewise = false;

  Env sender;
  sender.declare("tris", make_tris(registry, 6));
  const SymbolResolver none = [](const std::string&) { return std::nullopt; };
  dc::Buffer a;
  PacketCodec(registry, instance).pack(sender, none, a);
  dc::Buffer b;
  PacketCodec(registry, field).pack(sender, none, b);
  ASSERT_EQ(a.size(), b.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (*a.span(i, 1) != *b.span(i, 1)) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(PackedView, ParseAndFieldPointers) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 3));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 3));
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;
  sender.declare("tris", make_tris(registry, 4));
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; },
             buffer);

  // Skip the header (count slot + no items) and the group-count word the
  // whole-packet wrapper writes; the group's size slot follows.
  buffer.read<std::uint32_t>();  // header arity
  ASSERT_EQ(buffer.read<std::uint32_t>(), 1u);
  PackedView view = PackedView::parse(buffer, buffer.read_pos());
  EXPECT_EQ(view.collection(), "tris");
  EXPECT_EQ(view.elem_class(), "Tri");
  EXPECT_TRUE(view.instancewise());
  EXPECT_EQ(view.lo(), 0);
  EXPECT_EQ(view.count(), 4);
  EXPECT_EQ(view.n_items(), 2u);
  EXPECT_EQ(view.end_offset(), buffer.size());

  const std::vector<std::size_t> widths = {4, 4};
  float x2 = 0.0f;
  std::memcpy(&x2, view.field_ptr(0, 2, widths), sizeof(float));
  EXPECT_NEAR(x2, 2.25f, 1e-6);
  float y3 = 0.0f;
  std::memcpy(&y3, view.field_ptr(1, 3, widths), sizeof(float));
  EXPECT_NEAR(y3, 6.0f, 1e-6);
}

TEST(PackedView, FieldWiseFieldPointers) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 3));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 3));
  PackingLayout layout = plan_packing(req, {req}, registry);
  layout.groups[0].instancewise = false;  // force contiguous runs
  PacketCodec codec(registry, layout);
  Env sender;
  sender.declare("tris", make_tris(registry, 4));
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; },
             buffer);
  buffer.read<std::uint32_t>();
  buffer.read<std::uint32_t>();
  PackedView view = PackedView::parse(buffer, buffer.read_pos());
  EXPECT_FALSE(view.instancewise());
  const std::vector<std::size_t> widths = {4, 4};
  float x1 = 0.0f;
  std::memcpy(&x1, view.field_ptr(0, 1, widths), sizeof(float));
  EXPECT_NEAR(x1, 1.25f, 1e-6);
  float y0 = 0.0f;
  std::memcpy(&y0, view.field_ptr(1, 0, widths), sizeof(float));
  EXPECT_NEAR(y0, 0.0f, 1e-6);
}

TEST(PackedView, AppendToForwardsVerbatimAndPatchesFlag) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 5));
  PackingLayout instance = plan_packing(req, {req}, registry);
  PackingLayout field = instance;
  field.groups[0].instancewise = false;
  const SymbolResolver none = [](const std::string&) { return std::nullopt; };
  Env sender;
  sender.declare("tris", make_tris(registry, 6));

  dc::Buffer in;
  PacketCodec(registry, field).pack(sender, none, in);
  in.read<std::uint32_t>();
  in.read<std::uint32_t>();
  PackedView view = PackedView::parse(in, in.read_pos());

  // Verbatim copy: the forwarded block equals the source block.
  dc::Buffer copy;
  view.append_to(copy);
  ASSERT_EQ(copy.size(), in.size() - in.read_pos());
  EXPECT_EQ(std::memcmp(copy.data(), in.span(in.read_pos(), copy.size()),
                        copy.size()),
            0);

  // Patched copy: byte-identical to packing the instance-wise layout.
  dc::Buffer patched;
  view.append_to(patched, true);
  dc::Buffer direct;
  PacketCodec(registry, instance).pack(sender, none, direct);
  const std::size_t skip = in.read_pos();  // header + group count words
  ASSERT_EQ(patched.size(), direct.size() - skip);
  EXPECT_EQ(std::memcmp(patched.data(), direct.span(skip, patched.size()),
                        patched.size()),
            0);
}

}  // namespace
}  // namespace cgp
