// Packing layout planning + codec tests (§5).
#include <gtest/gtest.h>

#include "codegen/packing.h"

namespace cgp {
namespace {

ClassRegistry make_registry() {
  ClassRegistry registry;
  ClassInfo tri;
  tri.name = "Tri";
  tri.fields = {FieldInfo{"x", Type::primitive(PrimKind::Float), 0},
                FieldInfo{"y", Type::primitive(PrimKind::Float), 1},
                FieldInfo{"val", Type::primitive(PrimKind::Float), 2}};
  registry.add(tri);
  return registry;
}

ValueEntry elem_entry(TypePtr type, std::int64_t lo, std::int64_t hi) {
  return ValueEntry{std::move(type),
                    RectSection::dim1(SymPoly(lo), SymPoly(hi))};
}

TEST(Packing, FieldsConsumedTogetherAreInstanceWise) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet next_cons = req;  // both consumed immediately
  PackingLayout layout = plan_packing(req, {next_cons}, registry);
  ASSERT_EQ(layout.groups.size(), 1u);
  EXPECT_TRUE(layout.groups[0].instancewise);
  EXPECT_EQ(layout.groups[0].items.size(), 2u);
}

TEST(Packing, LaterConsumedFieldIsFieldWise) {
  // §5: a field used by the receiving filter packs instance-wise; a field
  // only re-forwarded packs field-wise.
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {kElemStep, "val"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet stage0_cons;
  stage0_cons.add(ValueId{"tris", {kElemStep, "x"}},
                  elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  ValueSet stage1_cons;
  stage1_cons.add(ValueId{"tris", {kElemStep, "val"}},
                  elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  PackingLayout layout =
      plan_packing(req, {stage0_cons, stage1_cons}, registry);
  ASSERT_EQ(layout.groups.size(), 2u);
  EXPECT_TRUE(layout.groups[0].instancewise);
  EXPECT_EQ(layout.groups[0].items[0].id.steps.back(), "x");
  EXPECT_FALSE(layout.groups[1].instancewise);
  EXPECT_EQ(layout.groups[1].items[0].id.steps.back(), "val");
}

TEST(Packing, WholeElementExpandsToReducedFields) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep}},
          elem_entry(Type::class_type("Tri"), 0, 4));
  PackingLayout layout = plan_packing(req, {req}, registry);
  ASSERT_EQ(layout.groups.size(), 1u);
  EXPECT_EQ(layout.groups[0].items.size(), 3u);  // x, y, val
}

TEST(Packing, LengthEntriesDropped) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 9));
  req.add(ValueId{"tris", {"length"}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  EXPECT_TRUE(layout.header.empty());
  EXPECT_EQ(layout.groups.size(), 1u);
}

TEST(Packing, RootedHeaderCollapses) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"pz", {"depth"}},
          ValueEntry{Type::array_of(Type::primitive(PrimKind::Float)), {}});
  req.add(ValueId{"pz", {"color"}},
          ValueEntry{Type::array_of(Type::primitive(PrimKind::Float)), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  ASSERT_EQ(layout.header.size(), 1u);
  EXPECT_EQ(layout.header[0].id.to_string(), "pz");
}

TEST(Packing, ScalarsStayInHeader) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"nsel", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  req.add(ValueId{"isoval", {}},
          ValueEntry{Type::primitive(PrimKind::Double), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  EXPECT_EQ(layout.header.size(), 2u);
  EXPECT_TRUE(layout.groups.empty());
}

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

std::shared_ptr<ArrayVal> make_tris(const ClassRegistry& registry, int n,
                                    std::int64_t base = 0) {
  auto arr = std::make_shared<ArrayVal>();
  arr->base_index = base;
  const ClassInfo* info = registry.find("Tri");
  for (int i = 0; i < n; ++i) {
    auto obj = std::make_shared<Object>();
    obj->class_name = "Tri";
    obj->fields.resize(info->fields.size());
    obj->fields[0] = Value{static_cast<double>(i) + 0.25};
    obj->fields[1] = Value{static_cast<double>(i) * 2.0};
    obj->fields[2] = Value{static_cast<double>(i) - 0.5};
    arr->elems.push_back(obj);
  }
  return arr;
}

TEST(Packing, CodecInstanceWiseRoundTrip) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 4));
  req.add(ValueId{"tris", {kElemStep, "y"}},
          elem_entry(Type::primitive(PrimKind::Float), 0, 4));
  req.add(ValueId{"count", {}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 5));
  sender.declare("count", Value{std::int64_t{5}});
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; }, buffer);

  Env receiver;
  codec.unpack(buffer, receiver);
  EXPECT_EQ(as_int(receiver.get("count")), 5);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  ASSERT_EQ(arr->elems.size(), 5u);
  const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[3]);
  EXPECT_NEAR(as_double(obj->fields[0]), 3.25, 1e-6);
  EXPECT_NEAR(as_double(obj->fields[1]), 6.0, 1e-6);
  // val was not packed: default-initialized.
  EXPECT_DOUBLE_EQ(as_double(obj->fields[2]), 0.0);
}

TEST(Packing, CodecSymbolicSectionResolved) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  SymPoly n = SymPoly::symbol("nsel");
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(SymPoly(0), n - 1)});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 10));
  dc::Buffer buffer;
  codec.pack(sender,
             [](const std::string& sym) -> std::optional<std::int64_t> {
               if (sym == "nsel") return 3;
               return std::nullopt;
             },
             buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->elems.size(), 3u);  // only [0:nsel-1] transmitted
}

TEST(Packing, CodecBaseShiftedSections) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  SymPoly p = SymPoly::symbol("p");
  // [p*4 : p*4+3] — the packet-relative idiom.
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float),
                     RectSection::dim1(p * 4, p * 4 + 3)});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);

  Env sender;
  sender.declare("tris", make_tris(registry, 16));
  dc::Buffer buffer;
  codec.pack(sender,
             [](const std::string& sym) -> std::optional<std::int64_t> {
               if (sym == "p") return 2;
               return std::nullopt;
             },
             buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->base_index, 8);
  ASSERT_EQ(arr->elems.size(), 4u);
  const auto& obj = std::get<std::shared_ptr<Object>>(arr->elems[0]);
  EXPECT_NEAR(as_double(obj->fields[0]), 8.25, 1e-6);  // element 8
}

TEST(Packing, CodecWholeCollectionFallback) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"tris", {kElemStep, "x"}},
          ValueEntry{Type::primitive(PrimKind::Float), std::nullopt});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;
  sender.declare("tris", make_tris(registry, 7));
  dc::Buffer buffer;
  codec.pack(sender, [](const std::string&) { return std::nullopt; }, buffer);
  Env receiver;
  codec.unpack(buffer, receiver);
  const auto& arr =
      std::get<std::shared_ptr<ArrayVal>>(receiver.get("tris"));
  EXPECT_EQ(arr->elems.size(), 7u);
}

TEST(Packing, CodecMissingBindingThrows) {
  ClassRegistry registry = make_registry();
  ValueSet req;
  req.add(ValueId{"count", {}},
          ValueEntry{Type::primitive(PrimKind::Int), {}});
  PackingLayout layout = plan_packing(req, {req}, registry);
  PacketCodec codec(registry, layout);
  Env sender;  // count not declared
  dc::Buffer buffer;
  EXPECT_THROW(
      codec.pack(sender, [](const std::string&) { return std::nullopt; },
                 buffer),
      std::runtime_error);
}

TEST(Packing, CodecLayoutMismatchThrows) {
  ClassRegistry registry = make_registry();
  ValueSet req_a;
  req_a.add(ValueId{"a", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  ValueSet req_b;
  req_b.add(ValueId{"a", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  req_b.add(ValueId{"b", {}}, ValueEntry{Type::primitive(PrimKind::Int), {}});
  PacketCodec sender_codec(registry, plan_packing(req_a, {req_a}, registry));
  PacketCodec receiver_codec(registry, plan_packing(req_b, {req_b}, registry));
  Env sender;
  sender.declare("a", Value{std::int64_t{1}});
  dc::Buffer buffer;
  sender_codec.pack(sender, [](const std::string&) { return std::nullopt; },
                    buffer);
  Env receiver;
  EXPECT_THROW(receiver_codec.unpack(buffer, receiver), std::runtime_error);
}

}  // namespace
}  // namespace cgp
