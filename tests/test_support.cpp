// Unit tests for the support library: symbolic polynomials, rectilinear
// sections, diagnostics, string helpers, deterministic RNG.
#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/section.h"
#include "support/str.h"
#include "support/symexpr.h"

namespace cgp {
namespace {

// ---------------------------------------------------------------------------
// SymPoly
// ---------------------------------------------------------------------------

TEST(SymPoly, ConstantsFold) {
  SymPoly a(3);
  SymPoly b(4);
  EXPECT_EQ((a + b).constant_value(), 7);
  EXPECT_EQ((a - b).constant_value(), -1);
  EXPECT_EQ((a * b).constant_value(), 12);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(SymPoly, ZeroIsEmpty) {
  SymPoly zero(0);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_constant());
  EXPECT_EQ(zero.constant_value(), 0);
  EXPECT_EQ(zero.to_string(), "0");
}

TEST(SymPoly, SymbolArithmetic) {
  SymPoly x = SymPoly::symbol("x");
  SymPoly y = SymPoly::symbol("y");
  SymPoly expr = 2 * x + y - 3;
  EXPECT_FALSE(expr.is_constant());
  EXPECT_EQ(expr.degree(), 1);
  std::vector<std::string> symbols = expr.symbols();
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], "x");
  EXPECT_EQ(symbols[1], "y");
}

TEST(SymPoly, ProductsNormalize) {
  SymPoly x = SymPoly::symbol("x");
  SymPoly y = SymPoly::symbol("y");
  EXPECT_EQ(x * y, y * x);
  EXPECT_EQ((x + y) * (x - y), x * x - y * y);
  EXPECT_EQ((x * x).degree(), 2);
}

TEST(SymPoly, CancellationRemovesTerms) {
  SymPoly x = SymPoly::symbol("x");
  SymPoly p = x * 3 - x - x - x;
  EXPECT_TRUE(p.is_zero());
}

TEST(SymPoly, Substitute) {
  SymPoly x = SymPoly::symbol("x");
  SymPoly y = SymPoly::symbol("y");
  SymPoly p = x * x + 2 * x + y;
  SymPoly q = p.substitute("x", SymPoly(3));
  EXPECT_EQ(q, SymPoly(15) + y);
  // substitute by another symbol
  SymPoly r = p.substitute("x", y);
  EXPECT_EQ(r, y * y + 3 * y);
}

TEST(SymPoly, Evaluate) {
  SymPoly x = SymPoly::symbol("x");
  SymPoly y = SymPoly::symbol("y");
  SymPoly p = x * y + 5;
  EXPECT_EQ(p.evaluate({{"x", 3}, {"y", 4}}), 17);
  EXPECT_EQ(p.evaluate({{"x", 3}}), std::nullopt);
}

TEST(SymPoly, ToStringIsReadable) {
  SymPoly p = SymPoly::symbol("n") * 2 - 3;
  EXPECT_EQ(p.to_string(), "2*n - 3");
  SymPoly q = SymPoly::symbol("a") * SymPoly::symbol("a");
  EXPECT_EQ(q.to_string(), "a*a");
}

// ---------------------------------------------------------------------------
// RectSection
// ---------------------------------------------------------------------------

TEST(RectSection, ScalarHasCountOne) {
  RectSection s = RectSection::scalar();
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.element_count().constant_value(), 1);
}

TEST(RectSection, ElementCount) {
  RectSection s = RectSection::dim1(SymPoly(0), SymPoly(9));
  EXPECT_EQ(s.element_count().constant_value(), 10);
  SymPoly n = SymPoly::symbol("n");
  RectSection sym = RectSection::dim1(SymPoly(0), n - 1);
  EXPECT_EQ(sym.element_count(), n);
}

TEST(RectSection, HullOfConstants) {
  RectSection a = RectSection::dim1(SymPoly(0), SymPoly(5));
  RectSection b = RectSection::dim1(SymPoly(3), SymPoly(9));
  auto hull = RectSection::hull(a, b);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(*hull, RectSection::dim1(SymPoly(0), SymPoly(9)));
}

TEST(RectSection, HullOfIdenticalSymbolic) {
  SymPoly n = SymPoly::symbol("n");
  RectSection a = RectSection::dim1(SymPoly(0), n);
  auto hull = RectSection::hull(a, a);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(*hull, a);
}

TEST(RectSection, HullIncomparableSymbolicFails) {
  SymPoly n = SymPoly::symbol("n");
  SymPoly m = SymPoly::symbol("m");
  RectSection a = RectSection::dim1(SymPoly(0), n);
  RectSection b = RectSection::dim1(SymPoly(0), m);
  EXPECT_FALSE(RectSection::hull(a, b).has_value());
}

TEST(RectSection, HullWithCommonSymbolicPart) {
  SymPoly p = SymPoly::symbol("p");
  // [p, p+3] and [p+1, p+5]: differences fold to constants.
  RectSection a = RectSection::dim1(p, p + 3);
  RectSection b = RectSection::dim1(p + 1, p + 5);
  auto hull = RectSection::hull(a, b);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(*hull, RectSection::dim1(p, p + 5));
}

TEST(RectSection, Covers) {
  RectSection big = RectSection::dim1(SymPoly(0), SymPoly(10));
  RectSection small = RectSection::dim1(SymPoly(2), SymPoly(5));
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
  EXPECT_TRUE(big.covers(big));
}

TEST(RectSection, CoversSymbolic) {
  SymPoly n = SymPoly::symbol("n");
  RectSection a = RectSection::dim1(SymPoly(0), n);
  RectSection b = RectSection::dim1(SymPoly(1), n - 1);
  EXPECT_TRUE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(RectSection, CoversRankMismatch) {
  RectSection one = RectSection::dim1(SymPoly(0), SymPoly(5));
  RectSection scalar = RectSection::scalar();
  EXPECT_FALSE(one.covers(scalar));
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 2}, "test", "a warning");
  EXPECT_FALSE(diags.has_errors());
  diags.error({3, 4}, "test", "an error");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  std::string rendered = diags.render();
  EXPECT_NE(rendered.find("1:2: warning [test] a warning"), std::string::npos);
  EXPECT_NE(rendered.find("3:4: error [test] an error"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error({}, "x", "boom");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.all().empty());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(Str, SplitJoinRoundTrip) {
  std::vector<std::string> parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(join(parts, "."), "a.b.c");
  EXPECT_EQ(split("", '.').size(), 1u);
  EXPECT_EQ(split("a.", '.').size(), 2u);
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  hello \n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(starts_with("runtime_define_x", "runtime_define_"));
  EXPECT_FALSE(starts_with("run", "runtime"));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.next_double(1.0, 2.0);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 2.0);
  }
}

}  // namespace
}  // namespace cgp
