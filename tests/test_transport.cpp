// Transport-layer tests (docs/PERFORMANCE.md, backend selection): backend
// parsing and option-conflict diagnostics, the shared frame codec (torn
// prefixes, partial feeds, batch integrity), the shared-memory byte ring
// (wraparound, full/empty blocking, oversize streaming, abort), the TCP
// loopback channels (short reads/writes, clean EOF, truncation), the
// marker-never-batched-with-data invariant the pumps rely on, and
// end-to-end multi-process pipeline runs on the proc and tcp backends —
// the first execution environment of runner_proc.cpp. The Transport* and
// *Backend* cases are the transport-conformance CI job's targets.
#include <errno.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/checkpoint.h"
#include "datacutter/runner.h"
#include "datacutter/shm_ring.h"
#include "datacutter/stream.h"
#include "datacutter/tcp_channel.h"
#include "datacutter/transport.h"

namespace cgp::dc {
namespace {

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

TEST(TransportBackendNames, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_backend("thread"), TransportBackend::kThread);
  EXPECT_EQ(parse_backend("proc"), TransportBackend::kProc);
  EXPECT_EQ(parse_backend("tcp"), TransportBackend::kTcp);
  EXPECT_FALSE(parse_backend("mpi").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("Thread").has_value());
  for (TransportBackend b : {TransportBackend::kThread, TransportBackend::kProc,
                             TransportBackend::kTcp})
    EXPECT_EQ(parse_backend(backend_name(b)), b);
}

TEST(TransportBackendNames, FlagConflicts) {
  // The thread backend honors everything.
  EXPECT_TRUE(transport_flag_conflicts(TransportBackend::kThread,
                                       {"--fault-inject", "--fault-seed"})
                  .empty());
  // Each unsupported option earns its own diagnostic, naming the backend.
  const std::vector<std::string> one =
      transport_flag_conflicts(TransportBackend::kProc, {"--fault-inject"});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NE(one[0].find("--fault-inject"), std::string::npos);
  EXPECT_NE(one[0].find("--backend=proc"), std::string::npos);
  // Diagnostics come out in the order the flags were given.
  const std::vector<std::string> two = transport_flag_conflicts(
      TransportBackend::kTcp, {"--fault-seed", "--fault-inject"});
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].find("--fault-seed"), 0u);
  EXPECT_EQ(two[1].find("--fault-inject"), 0u);
  EXPECT_NE(two[0].find("--backend=tcp"), std::string::npos);
  // --stage-timeout is no longer a conflict: heartbeats make the watchdog
  // legal on process backends (the heartbeat requirement is validated by
  // the runner, not here). Unknown flags are simply not conflicts.
  EXPECT_TRUE(transport_flag_conflicts(TransportBackend::kTcp,
                                       {"--stage-timeout", "--packets"})
                  .empty());
  EXPECT_TRUE(transport_flag_conflicts(TransportBackend::kProc, {}).empty());
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::vector<std::byte> encode(const Frame& frame) {
  std::vector<std::byte> out;
  encode_frame(frame, out);
  return out;
}

Buffer payload_buffer(std::uint32_t tag, const std::string& bytes) {
  Buffer b;
  b.set_tag(tag);
  if (!bytes.empty()) b.write_bytes(bytes.data(), bytes.size());
  return b;
}

std::string payload_string(const Buffer& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(FrameCodec, DataRoundTrip) {
  FrameDecoder decoder;
  const std::vector<std::byte> wire =
      encode(Frame::data(payload_buffer(7, "hello")));
  decoder.feed(wire.data(), wire.size());
  std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kData);
  ASSERT_EQ(frame->buffers.size(), 1u);
  EXPECT_EQ(frame->buffers[0].tag(), 7u);
  EXPECT_EQ(payload_string(frame->buffers[0]), "hello");
  EXPECT_TRUE(decoder.idle());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameCodec, BatchRoundTripIncludingEmptyPayload) {
  std::vector<Buffer> batch;
  batch.push_back(payload_buffer(1, "alpha"));
  batch.push_back(payload_buffer(0, ""));  // zero-length packet is legal
  batch.push_back(payload_buffer(9, std::string(3000, 'x')));
  FrameDecoder decoder;
  const std::vector<std::byte> wire = encode(Frame::batch(std::move(batch)));
  decoder.feed(wire.data(), wire.size());
  std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kBatch);
  ASSERT_EQ(frame->buffers.size(), 3u);
  EXPECT_EQ(frame->buffers[0].tag(), 1u);
  EXPECT_EQ(payload_string(frame->buffers[0]), "alpha");
  EXPECT_EQ(frame->buffers[1].size(), 0u);
  EXPECT_EQ(frame->buffers[2].size(), 3000u);
  EXPECT_TRUE(decoder.idle());
}

TEST(FrameCodec, MarkerAndCloseRoundTrip) {
  FrameDecoder decoder;
  std::vector<std::byte> wire = encode(Frame::marker(-12345));
  const std::vector<std::byte> close_wire = encode(Frame::close());
  wire.insert(wire.end(), close_wire.begin(), close_wire.end());
  decoder.feed(wire.data(), wire.size());
  std::optional<Frame> marker = decoder.next();
  ASSERT_TRUE(marker.has_value());
  EXPECT_EQ(marker->kind, FrameKind::kMarker);
  EXPECT_EQ(marker->marker_id, -12345);
  EXPECT_TRUE(marker->buffers.empty());
  std::optional<Frame> close = decoder.next();
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(close->kind, FrameKind::kClose);
  EXPECT_TRUE(decoder.idle());
}

TEST(FrameCodec, ByteAtATimeFeedReassemblesEveryKind) {
  // Worst-case fragmentation: one byte per read. Until the final byte of
  // each frame lands, next() must report "need more", never a torn frame.
  std::vector<std::byte> wire = encode(Frame::data(payload_buffer(3, "ab")));
  for (const std::vector<std::byte>& part :
       {encode(Frame::batch([] {
          std::vector<Buffer> b;
          b.push_back(payload_buffer(4, "cd"));
          b.push_back(payload_buffer(5, "efg"));
          return b;
        }())),
        encode(Frame::marker(42)), encode(Frame::close())})
    wire.insert(wire.end(), part.begin(), part.end());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const std::byte b : wire) {
    decoder.feed(&b, 1);
    while (std::optional<Frame> frame = decoder.next())
      frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].kind, FrameKind::kData);
  EXPECT_EQ(payload_string(frames[0].buffers[0]), "ab");
  EXPECT_EQ(frames[1].kind, FrameKind::kBatch);
  ASSERT_EQ(frames[1].buffers.size(), 2u);
  EXPECT_EQ(payload_string(frames[1].buffers[1]), "efg");
  EXPECT_EQ(frames[2].kind, FrameKind::kMarker);
  EXPECT_EQ(frames[2].marker_id, 42);
  EXPECT_EQ(frames[3].kind, FrameKind::kClose);
  EXPECT_TRUE(decoder.idle());
}

TEST(FrameCodec, TornLengthPrefixRejected) {
  // A length above the frame bound can only be a torn or corrupt prefix;
  // it must fail immediately, not wait for 4 GiB that will never come.
  const std::uint32_t bad_length = kMaxFramePayload + 1;
  std::vector<std::byte> wire(5);
  std::memcpy(wire.data(), &bad_length, sizeof(bad_length));
  wire[4] = static_cast<std::byte>(FrameKind::kData);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(FrameCodec, UnknownKindRejected) {
  std::vector<std::byte> wire(5, std::byte{0});
  wire[4] = std::byte{9};  // no such FrameKind
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(FrameCodec, CorruptBatchInteriorRejected) {
  // A batch whose declared count overruns the frame payload is structural
  // corruption, not a recoverable short read.
  const std::uint32_t length = 4;  // room for the count, nothing else
  const std::uint32_t count = 2;
  std::vector<std::byte> wire(5 + length);
  std::memcpy(wire.data(), &length, sizeof(length));
  wire[4] = static_cast<std::byte>(FrameKind::kBatch);
  std::memcpy(wire.data() + 5, &count, sizeof(count));
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(FrameCodec, MarkerWithWrongPayloadSizeRejected) {
  const std::uint32_t length = 4;  // a marker payload is exactly 8 bytes
  std::vector<std::byte> wire(5 + length, std::byte{0});
  std::memcpy(wire.data(), &length, sizeof(length));
  wire[4] = static_cast<std::byte>(FrameKind::kMarker);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(FrameCodec, HeartbeatRoundTrip) {
  FrameDecoder decoder;
  const std::vector<std::byte> wire =
      encode(Frame::heartbeat(42, 123456789012345, 67890, 3, 4));
  decoder.feed(wire.data(), wire.size());
  std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kHeartbeat);
  EXPECT_TRUE(frame->buffers.empty());
  EXPECT_EQ(frame->hb_seq, 42);
  EXPECT_EQ(frame->hb_send_ns, 123456789012345);
  EXPECT_EQ(frame->hb_progress, 67890);
  EXPECT_EQ(frame->hb_waiting, 3);
  EXPECT_EQ(frame->hb_live, 4);
  EXPECT_TRUE(decoder.idle());
}

TEST(FrameCodec, HeartbeatByteAtATimeReassembles) {
  // A heartbeat can interleave with bulk traffic on the control pipe and
  // arrive in arbitrarily small reads; the decoder must reassemble it.
  const std::vector<std::byte> wire =
      encode(Frame::heartbeat(1, -5, 0, 0, 1));
  FrameDecoder decoder;
  for (const std::byte b : wire) decoder.feed(&b, 1);
  std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kHeartbeat);
  EXPECT_EQ(frame->hb_seq, 1);
  EXPECT_EQ(frame->hb_send_ns, -5);
  EXPECT_EQ(frame->hb_live, 1);
}

TEST(FrameCodec, HeartbeatWithWrongPayloadSizeRejected) {
  // Torn (too short) and oversize heartbeat payloads are both structural
  // corruption: the payload is exactly five 64-bit fields.
  for (const std::uint32_t length : {8u, 32u, 48u}) {
    std::vector<std::byte> wire(5 + length, std::byte{0});
    std::memcpy(wire.data(), &length, sizeof(length));
    wire[4] = static_cast<std::byte>(FrameKind::kHeartbeat);
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    EXPECT_THROW(decoder.next(), std::runtime_error) << length;
  }
}

// ---------------------------------------------------------------------------
// FrameLink over pipes: short reads/writes, truncation, telemetry
// ---------------------------------------------------------------------------

struct PipePair {
  std::shared_ptr<FdChannel> read_end;
  std::shared_ptr<FdChannel> write_end;
};

PipePair make_pipe_pair() {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  return {std::make_shared<FdChannel>(fds[0], FdChannel::Kind::kPipe),
          std::make_shared<FdChannel>(fds[1], FdChannel::Kind::kPipe)};
}

TEST(FrameLinkPipe, LargeFrameStreamsThroughShortWrites) {
  // 1 MiB through a ~64 KiB pipe: the sender must loop over short writes
  // while the receiver reassembles from short reads.
  PipePair pipe = make_pipe_pair();
  FrameLink sender(pipe.write_end);
  FrameLink receiver(pipe.read_end);
  const std::string big(1 << 20, 'z');
  std::thread writer([&] {
    EXPECT_TRUE(sender.send(Frame::data(payload_buffer(11, big))));
    EXPECT_TRUE(sender.send(Frame::close()));
    sender.close_write();
  });
  std::optional<Frame> frame = receiver.recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kData);
  EXPECT_EQ(frame->buffers[0].size(), big.size());
  EXPECT_EQ(payload_string(frame->buffers[0]), big);
  std::optional<Frame> close = receiver.recv();
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(close->kind, FrameKind::kClose);
  EXPECT_FALSE(receiver.recv().has_value());  // clean EOF
  EXPECT_TRUE(receiver.error().empty());
  writer.join();
  // Both endpoints agree on the wire volume.
  EXPECT_EQ(sender.counters().frames, 2);
  EXPECT_EQ(sender.counters().wire_bytes, receiver.counters().wire_bytes);
  EXPECT_GT(sender.counters().wire_bytes,
            static_cast<std::int64_t>(big.size()));
}

TEST(FrameLinkPipe, TruncatedStreamMidFrameIsAnError) {
  PipePair pipe = make_pipe_pair();
  {
    // A valid prefix claiming 100 payload bytes, then only 10, then EOF.
    const std::uint32_t length = 100;
    std::vector<std::byte> partial(5 + 10, std::byte{0x5a});
    std::memcpy(partial.data(), &length, sizeof(length));
    partial[4] = static_cast<std::byte>(FrameKind::kData);
    EXPECT_TRUE(pipe.write_end->write_all(partial.data(), partial.size()));
    pipe.write_end->close_write();
  }
  FrameLink receiver(pipe.read_end);
  EXPECT_FALSE(receiver.recv().has_value());
  EXPECT_NE(receiver.error().find("truncated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared-memory ring
// ---------------------------------------------------------------------------

TEST(ShmRingTest, WraparoundPreservesByteStream) {
  // 64 KiB through a 64-byte ring: the cursors wrap ~1000 times and the
  // byte stream must come out identical.
  auto ring = ShmRing::create(64);
  EXPECT_EQ(ring->capacity(), 64u);
  std::vector<std::byte> sent(64 * 1024);
  for (std::size_t i = 0; i < sent.size(); ++i)
    sent[i] = static_cast<std::byte>(i * 31 + 7);
  std::thread writer([&] {
    // Mixed write sizes so boundaries land everywhere in the ring.
    std::size_t at = 0;
    std::size_t n = 1;
    while (at < sent.size()) {
      const std::size_t take = std::min(n, sent.size() - at);
      EXPECT_TRUE(ring->write_all(sent.data() + at, take));
      at += take;
      n = n % 200 + 3;
    }
    ring->close_write();
  });
  std::vector<std::byte> got;
  std::byte chunk[97];
  for (;;) {
    const std::ptrdiff_t n = ring->read_some(chunk, sizeof(chunk));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    got.insert(got.end(), chunk, chunk + n);
  }
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(ShmRingTest, SingleWriteLargerThanCapacityStreamsThrough) {
  // Capacity bounds memory, never message size: one 8 KiB write_all
  // through a 64-byte ring must stream in chunks as the reader drains.
  auto ring = ShmRing::create(64);
  std::vector<std::byte> sent(8 * 1024);
  for (std::size_t i = 0; i < sent.size(); ++i)
    sent[i] = static_cast<std::byte>(i ^ (i >> 8));
  std::thread writer([&] {
    EXPECT_TRUE(ring->write_all(sent.data(), sent.size()));
    ring->close_write();
  });
  std::vector<std::byte> got;
  std::byte chunk[256];
  for (;;) {
    const std::ptrdiff_t n = ring->read_some(chunk, sizeof(chunk));
    ASSERT_GE(n, 0);
    if (n == 0) break;
    got.insert(got.end(), chunk, chunk + n);
  }
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(ShmRingTest, EmptyRingBlocksUntilCloseGivesEof) {
  auto ring = ShmRing::create(128);
  std::atomic<bool> eof{false};
  std::thread reader([&] {
    std::byte chunk[16];
    const std::ptrdiff_t n = ring->read_some(chunk, sizeof(chunk));
    EXPECT_EQ(n, 0);
    eof.store(true);
  });
  // The reader parks on the empty ring; close_write releases it with EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(eof.load());
  ring->close_write();
  reader.join();
  EXPECT_TRUE(eof.load());
}

TEST(ShmRingTest, AbortUnblocksBothSides) {
  auto ring = ShmRing::create(16);
  // Fill the ring so a writer blocks on backpressure.
  std::vector<std::byte> fill(16, std::byte{1});
  EXPECT_TRUE(ring->write_all(fill.data(), fill.size()));
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    std::byte more[8] = {};
    writer_failed.store(!ring->write_all(more, sizeof(more)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_failed.load());
  ring->abort();
  writer.join();
  EXPECT_TRUE(writer_failed.load());
  EXPECT_TRUE(ring->aborted());
  std::byte chunk[8];
  EXPECT_EQ(ring->read_some(chunk, sizeof(chunk)), -1);
  EXPECT_FALSE(ring->write_all(chunk, sizeof(chunk)));
}

TEST(ShmRingTest, FrameLinkOverRingKeepsMarkersAlone) {
  // The wire invariant end to end on the proc substrate: batches of data,
  // then a marker frame that must arrive by itself, then more data.
  auto ring = ShmRing::create(256);
  FrameLink sender(ring);
  FrameLink receiver(ring);
  std::thread writer([&] {
    std::vector<Buffer> batch;
    batch.push_back(payload_buffer(1, "one"));
    batch.push_back(payload_buffer(2, "two"));
    EXPECT_TRUE(sender.send(Frame::batch(std::move(batch))));
    EXPECT_TRUE(sender.send(Frame::marker(77)));
    EXPECT_TRUE(sender.send(Frame::data(payload_buffer(3, "three"))));
    EXPECT_TRUE(sender.send(Frame::close()));
    sender.close_write();
  });
  std::vector<Frame> frames;
  while (std::optional<Frame> f = receiver.recv())
    frames.push_back(std::move(*f));
  writer.join();
  EXPECT_TRUE(receiver.error().empty());
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].kind, FrameKind::kBatch);
  EXPECT_EQ(frames[0].buffers.size(), 2u);
  EXPECT_EQ(frames[1].kind, FrameKind::kMarker);
  EXPECT_EQ(frames[1].marker_id, 77);
  EXPECT_TRUE(frames[1].buffers.empty());  // nothing rides with a marker
  EXPECT_EQ(frames[2].kind, FrameKind::kData);
  EXPECT_EQ(frames[3].kind, FrameKind::kClose);
}

TEST(ShmRingTest, SurvivorRecoversWhenPeerKilledHoldingTheRing) {
  // A peer SIGKILLed anywhere in the ring protocol — including while it
  // holds the ring mutex mid-copy, leaving it for the survivor to recover
  // via EOWNERDEAD — must end in a clean abort (read_some -> -1), never a
  // thrown std::system_error out of the wait path or a permanent wedge.
  // Several rounds with varied timing so some kills land inside the
  // lock-held window.
  for (int round = 0; round < 8; ++round) {
    auto ring = ShmRing::create(4096);
    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      std::vector<std::byte> chunk(1024, std::byte{0x7e});
      while (ring->write_all(chunk.data(), chunk.size())) {
      }
      ::_exit(0);
    }
    std::atomic<std::ptrdiff_t> last{1};
    std::thread reader([&] {
      std::byte chunk[512];
      std::ptrdiff_t n;
      do {
        n = ring->read_some(chunk, sizeof(chunk));
      } while (n > 0);
      last.store(n);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
    ::kill(child, SIGKILL);
    int st = 0;
    while (::waitpid(child, &st, 0) < 0 && errno == EINTR) {
    }
    // What the supervisor's reaper does on a silent death; if the child
    // died holding the mutex, this (or the parked reader's own wakeup)
    // takes the EOWNERDEAD recovery path instead.
    ring->abort();
    reader.join();
    EXPECT_LE(last.load(), 0);
    EXPECT_TRUE(ring->aborted());
    EXPECT_FALSE(ring->write_all(reinterpret_cast<const std::byte*>("x"), 1));
  }
}

// ---------------------------------------------------------------------------
// TCP loopback channels
// ---------------------------------------------------------------------------

TEST(TcpChannelTest, LoopbackLargeFrameBothDirections) {
  TcpListener listener;
  ASSERT_GT(listener.port(), 0);
  std::shared_ptr<FdChannel> client;
  std::thread connector(
      [&] { client = tcp_connect_loopback(listener.port()); });
  std::shared_ptr<FdChannel> server = listener.accept_one();
  connector.join();
  ASSERT_TRUE(client != nullptr);
  ASSERT_TRUE(server != nullptr);

  const std::string request(256 * 1024, 'q');
  const std::string response(128 * 1024, 'r');
  std::thread client_side([&] {
    FrameLink link_out(client);
    FrameLink link_in(client);
    EXPECT_TRUE(link_out.send(Frame::data(payload_buffer(1, request))));
    link_out.close_write();
    std::optional<Frame> got = link_in.recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(payload_string(got->buffers[0]), response);
    EXPECT_FALSE(link_in.recv().has_value());
    EXPECT_TRUE(link_in.error().empty());
  });
  FrameLink link_in(server);
  FrameLink link_out(server);
  std::optional<Frame> got = link_in.recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->buffers[0].size(), request.size());
  EXPECT_TRUE(link_out.send(Frame::data(payload_buffer(2, response))));
  link_out.close_write();
  EXPECT_FALSE(link_in.recv().has_value());  // client shut down cleanly
  EXPECT_TRUE(link_in.error().empty());
  client_side.join();
}

TEST(TcpChannelTest, AbortUnblocksBlockedReader) {
  TcpListener listener;
  std::shared_ptr<FdChannel> client;
  std::thread connector(
      [&] { client = tcp_connect_loopback(listener.port()); });
  std::shared_ptr<FdChannel> server = listener.accept_one();
  connector.join();
  std::atomic<std::ptrdiff_t> result{99};
  std::thread reader([&] {
    std::byte chunk[16];
    result.store(server->read_some(chunk, sizeof(chunk)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(result.load(), 99);
  server->abort();
  reader.join();
  EXPECT_LE(result.load(), 0);  // -1 (abort) or 0 (reset read as EOF)
  std::byte b{};
  EXPECT_FALSE(server->write_all(&b, 1));
}

TEST(TcpChannelTest, AcceptOneCancelFdUnblocksParkedAccept) {
  // A worker parked in accept_one with nothing connecting must wake when
  // its command pipe becomes readable (abort broadcast) or hangs up
  // (supervisor died) — the wedge the startup window used to have.
  for (const bool hang_up : {false, true}) {
    TcpListener listener;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::shared_ptr<FdChannel> got =
        std::make_shared<FdChannel>(-1, FdChannel::Kind::kPipe);
    std::thread acceptor([&] { got = listener.accept_one(fds[0]); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (hang_up) {
      ::close(fds[1]);
    } else {
      const char poke = 'x';
      ASSERT_EQ(::write(fds[1], &poke, 1), 1);
    }
    acceptor.join();
    EXPECT_EQ(got, nullptr);
    ::close(fds[0]);
    if (!hang_up) ::close(fds[1]);
  }
}

TEST(TcpChannelTest, QueuedConnectionBeatsCancellation) {
  TcpListener listener;
  // A connection already queued wins over a cancel fd that is already
  // readable...
  std::shared_ptr<FdChannel> first = tcp_connect_loopback(listener.port());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const char poke = 'x';
  ASSERT_EQ(::write(fds[1], &poke, 1), 1);
  EXPECT_NE(listener.accept_one(fds[0]), nullptr);
  ::close(fds[0]);
  ::close(fds[1]);
  // ...and over a predicate that is already reporting cancellation (the
  // final zero-timeout poll drains it)...
  std::shared_ptr<FdChannel> second = tcp_connect_loopback(listener.port());
  EXPECT_NE(listener.accept_one(-1, [] { return true; }), nullptr);
  // ...while with nothing queued the predicate abandons the accept.
  EXPECT_EQ(listener.accept_one(-1, [] { return true; }), nullptr);
}

// ---------------------------------------------------------------------------
// The Stream-side invariant the send pumps rely on
// ---------------------------------------------------------------------------

TEST(StreamMarkerInvariant, PopBatchNeverMixesMarkerWithData) {
  Stream stream(16);
  stream.set_producers(1);
  stream.set_consumers(1);
  for (std::int64_t v : {1, 2, 3}) {
    Buffer b;
    b.write<std::int64_t>(v);
    EXPECT_TRUE(stream.push(std::move(b)));
  }
  EXPECT_TRUE(stream.push_marker(42));
  for (std::int64_t v : {4, 5}) {
    Buffer b;
    b.write<std::int64_t>(v);
    EXPECT_TRUE(stream.push(std::move(b)));
  }
  stream.close();

  std::vector<Buffer> batch;
  // The marker ends the first batch early...
  EXPECT_EQ(stream.pop_batch(batch, 8, 0), 3u);
  for (const Buffer& b : batch) EXPECT_NE(b.tag(), kCheckpointMarkerTag);
  batch.clear();
  // ...then is delivered alone, exactly as the send pump expects when it
  // translates a singleton marker batch into a kMarker frame.
  EXPECT_EQ(stream.pop_batch(batch, 8, 0), 1u);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].tag(), kCheckpointMarkerTag);
  EXPECT_EQ(batch[0].peek_at<std::int64_t>(0), 42);
  batch.clear();
  EXPECT_EQ(stream.pop_batch(batch, 8, 0), 2u);
  batch.clear();
  EXPECT_EQ(stream.pop_batch(batch, 8, 0), 0u);  // closed and drained
}

// ---------------------------------------------------------------------------
// End-to-end multi-process pipelines (the proc and tcp backends)
// ---------------------------------------------------------------------------

class CountingSource : public Filter {
 public:
  explicit CountingSource(int n) : n_(n) {}
  void process(FilterContext& ctx) override {
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
      ctx.add_ops(1.0);
    }
  }

 private:
  int n_;
};

class AddOne : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
      ctx.add_ops(1.0);
    }
  }
  bool snapshot_state(Buffer&) override { return true; }  // stateless
};

// Throws once per process on a specific value, then lets the replay pass:
// models a transient fault inside a worker. The flag is process-local
// state, which is exactly what a fork-isolated worker gives every stage.
class FlakyAddOne : public Filter {
 public:
  explicit FlakyAddOne(std::int64_t trip) : trip_(trip) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      if (v == trip_ && !tripped().exchange(true))
        throw std::runtime_error("transient worker fault");
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }
  bool snapshot_state(Buffer&) override { return true; }

 private:
  static std::atomic<bool>& tripped() {
    static std::atomic<bool> flag{false};
    return flag;
  }
  std::int64_t trip_;
};

class PoisonedAddOne : public Filter {
 public:
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      if (v == 13) throw std::runtime_error("poison packet 13");
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }
};

struct SinkState {
  std::mutex mutex;
  std::multiset<std::int64_t> values;
  std::int64_t total = 0;
};

class CollectingSink : public Filter {
 public:
  explicit CollectingSink(std::shared_ptr<SinkState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      const std::int64_t v = b->read<std::int64_t>();
      std::lock_guard lock(state_->mutex);
      state_->values.insert(v);
      state_->total += v;
    }
  }
  bool snapshot_state(Buffer& out) override {
    std::lock_guard lock(state_->mutex);
    out.write<std::int64_t>(state_->total);
    return true;
  }
  void restore_state(Buffer& in) override {
    std::lock_guard lock(state_->mutex);
    state_->total = in.read<std::int64_t>();
  }

 private:
  std::shared_ptr<SinkState> state_;
};

std::vector<FilterGroup> three_stage(int n, int copies,
                                     std::shared_ptr<SinkState> state) {
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"src", [n] { return std::make_unique<CountingSource>(n); }, copies, 0});
  groups.push_back(
      {"mid", [] { return std::make_unique<AddOne>(); }, copies, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<CollectingSink>(state); }, 1,
       2});
  return groups;
}

std::multiset<std::int64_t> expected_values(int n, std::int64_t offset) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.insert(i + offset);
  return out;
}

class BackendPipeline : public ::testing::TestWithParam<TransportBackend> {};

TEST_P(BackendPipeline, ThreeStageDeliversExactMultiset) {
  const TransportBackend backend = GetParam();
  auto state = std::make_shared<SinkState>();
  RunnerConfig config;
  config.backend = backend;
  config.stream_capacity = 8;
  PipelineRunner runner(three_stage(100, 1, state), config);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(100, 1));
  const RunStats& stats = outcome.stats;
  EXPECT_TRUE(stats.completed);
  ASSERT_EQ(stats.link_buffers.size(), 2u);
  EXPECT_EQ(stats.link_buffers[0], 100);
  EXPECT_EQ(stats.link_bytes[0], 800);
  EXPECT_DOUBLE_EQ(stats.group_ops[0], 100.0);
  EXPECT_DOUBLE_EQ(stats.group_ops[1], 100.0);
  ASSERT_EQ(stats.group_metrics.size(), 3u);
  EXPECT_EQ(stats.group_metrics[1].packets_in, 100);
  EXPECT_EQ(stats.group_metrics[2].packets_in, 100);
  // Trace-v7 wire telemetry: both links crossed a process boundary.
  ASSERT_EQ(stats.link_metrics.size(), 2u);
  for (const support::LinkMetrics& link : stats.link_metrics) {
    EXPECT_EQ(link.transport, backend_name(backend));
    EXPECT_GT(link.frames, 0);
    // Payload plus framing overhead.
    EXPECT_GT(link.wire_bytes, link.bytes);
  }
}

TEST_P(BackendPipeline, ReplicatedBatchedPipelineMatches) {
  const TransportBackend backend = GetParam();
  auto state = std::make_shared<SinkState>();
  RunnerConfig config;
  config.backend = backend;
  config.stream_capacity = 4;
  config.batch_size = 4;
  PipelineRunner runner(three_stage(200, 3, state), config);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(200, 1));
  const RunStats& stats = outcome.stats;
  EXPECT_EQ(stats.link_metrics[0].buffers, 200);
  // Coalescing survives the wire: fewer enqueues than buffers upstream.
  EXPECT_LT(stats.link_metrics[0].batches, stats.link_metrics[0].buffers);
  EXPECT_EQ(stats.batch_size, 4);
}

TEST_P(BackendPipeline, WorkerFaultFailsFastAndTearsDown) {
  const TransportBackend backend = GetParam();
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"src", [] { return std::make_unique<CountingSource>(5000); }, 1, 0});
  groups.push_back(
      {"mid", [] { return std::make_unique<PoisonedAddOne>(); }, 1, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<CollectingSink>(state); }, 1,
       2});
  RunnerConfig config;
  config.backend = backend;
  config.stream_capacity = 4;
  PipelineRunner runner(std::move(groups), config);  // fail-fast default
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.stats.completed);
  // The worker's fatal message crossed the control plane verbatim.
  EXPECT_NE(outcome.stats.error.find("poison packet 13"), std::string::npos)
      << outcome.stats.error;
}

TEST_P(BackendPipeline, RestartCopyRecoversTransientWorkerFault) {
  const TransportBackend backend = GetParam();
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"src", [] { return std::make_unique<CountingSource>(64); }, 1, 0});
  groups.push_back(
      {"mid", [] { return std::make_unique<FlakyAddOne>(10); }, 1, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<CollectingSink>(state); }, 1,
       2});
  FaultPolicy policy;
  policy.action = FaultAction::kRestartCopy;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  RunnerConfig config;
  config.backend = backend;
  config.stream_capacity = 4;
  PipelineRunner runner(std::move(groups), config, policy);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // Exactly-once delivery despite the mid-stage restart, and the fault
  // record crossed the control plane with its resolution intact.
  EXPECT_EQ(state->values, expected_values(64, 1));
  ASSERT_FALSE(outcome.stats.faults.empty());
  EXPECT_EQ(outcome.stats.faults[0].group, "mid");
  EXPECT_NE(outcome.stats.faults[0].what.find("transient worker fault"),
            std::string::npos);
  EXPECT_GE(outcome.stats.total_retries(), 1);
}

TEST_P(BackendPipeline, RunLevelCheckpointCutsFlowAcrossProcesses) {
  const TransportBackend backend = GetParam();
  const std::string path = std::string("cgp_ckpt_transport_") +
                           backend_name(backend) + "_test.json";
  auto state = std::make_shared<SinkState>();
  FaultPolicy policy;
  policy.action = FaultAction::kRestartCopy;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  RunnerConfig config;
  config.backend = backend;
  config.stream_capacity = 8;
  config.checkpoint_interval = 16;
  config.checkpoint_path = path;
  PipelineRunner runner(three_stage(128, 1, state), config, policy);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(state->values, expected_values(128, 1));
  // Markers crossed two process boundaries, parts flowed back over the
  // control plane, and the collector committed consistent cuts.
  ASSERT_FALSE(outcome.stats.checkpoints.empty());
  bool saw_run_cut = false;
  for (const support::CheckpointRecord& rec : outcome.stats.checkpoints)
    if (rec.group == "run") {
      saw_run_cut = true;
      EXPECT_EQ(rec.packet_index % 16, 0);
      EXPECT_GT(rec.parts, 0);
    }
  EXPECT_TRUE(saw_run_cut);
  const RunCheckpoint cut = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_GT(cut.source_delivered, 0);
  EXPECT_EQ(cut.source_delivered % 16, 0);
  ASSERT_EQ(cut.stages.size(), 2u);
  EXPECT_EQ(cut.stages[0].group, "mid");
  EXPECT_EQ(cut.stages[1].group, "sink");
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendPipeline,
                         ::testing::Values(TransportBackend::kProc,
                                           TransportBackend::kTcp),
                         [](const auto& info) {
                           return std::string(backend_name(info.param));
                         });

TEST(MultiprocessRunner, SingleGroupRunsInProcess) {
  // One group means no cross-group links: nothing to put a process
  // boundary on, so every backend runs it in-process.
  auto hits = std::make_shared<std::atomic<int>>(0);
  struct Only : Filter {
    explicit Only(std::shared_ptr<std::atomic<int>> hits)
        : hits_(std::move(hits)) {}
    void process(FilterContext&) override { hits_->fetch_add(1); }
    std::shared_ptr<std::atomic<int>> hits_;
  };
  std::vector<FilterGroup> groups;
  groups.push_back(
      {"only", [hits] { return std::make_unique<Only>(hits); }, 2, 0});
  RunnerConfig config;
  config.backend = TransportBackend::kProc;
  PipelineRunner runner(std::move(groups), config);
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // In-process execution: the shared counter is visible to this test.
  EXPECT_EQ(hits->load(), 2);
  EXPECT_TRUE(outcome.stats.link_metrics.empty());
}

TEST(MultiprocessRunner, StageTimeoutWithoutHeartbeatsRejected) {
  // The watchdog needs worker progress samples, which on a process
  // backend only the heartbeat stream provides; without heartbeats the
  // combination is rejected up front, with a message that names the cure.
  for (TransportBackend backend :
       {TransportBackend::kProc, TransportBackend::kTcp}) {
    auto state = std::make_shared<SinkState>();
    FaultPolicy policy;
    policy.stage_timeout_seconds = 0.5;
    RunnerConfig config;
    config.backend = backend;
    PipelineRunner runner(three_stage(8, 1, state), config, policy);
    try {
      runner.run_supervised();
      FAIL() << backend_name(backend) << ": expected invalid_argument";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("heartbeat"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(MultiprocessRunner, ProcessHookSeesOneWorkerPerNonSinkGroup) {
  auto state = std::make_shared<SinkState>();
  RunnerConfig config;
  config.backend = TransportBackend::kProc;
  PipelineRunner runner(three_stage(16, 1, state), config);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, long>> launches;
  runner.set_process_hook([&](std::size_t gi, long pid) {
    std::lock_guard lock(mutex);
    launches.emplace_back(gi, pid);
  });
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  ASSERT_EQ(launches.size(), 2u);  // src and mid; the sink stays local
  EXPECT_EQ(launches[0].first, 0u);
  EXPECT_EQ(launches[1].first, 1u);
  EXPECT_GT(launches[0].second, 0);
  EXPECT_NE(launches[0].second, launches[1].second);
}

TEST(MultiprocessRunner, GroupStateCodecRoundTripsWorkerState) {
  // The exporter runs inside each worker's address space; the blobs must
  // come back to the supervisor attributed to the right group.
  auto state = std::make_shared<SinkState>();
  RunnerConfig config;
  config.backend = TransportBackend::kProc;
  PipelineRunner runner(three_stage(32, 1, state), config);
  runner.set_group_state_codec(
      [](std::size_t gi) {
        std::vector<std::byte> blob;
        blob.push_back(static_cast<std::byte>(0xc0 + gi));
        return blob;
      },
      [state](std::size_t gi, const std::vector<std::byte>& blob) {
        ASSERT_EQ(blob.size(), 1u);
        EXPECT_EQ(blob[0], static_cast<std::byte>(0xc0 + gi));
        std::lock_guard lock(state->mutex);
        state->total += 1000 * static_cast<std::int64_t>(gi + 1);
      });
  const std::int64_t payload_total = 32 * 33 / 2;  // 1..32 after AddOne
  RunOutcome outcome = runner.run_supervised();
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  // Both worker blobs were imported: src added 1000, mid added 2000.
  EXPECT_EQ(state->total, payload_total + 3000);
}

TEST(MultiprocessRunner, TcpWorkerDeathAtStartupNeverWedgesTheRun) {
  // Regression: a worker SIGKILLed in its startup window (after its plan
  // ACK, possibly before the tcp data plane connected) used to strand its
  // downstream peer — or the supervisor's own sink accept — in a blocking
  // accept() nothing could interrupt, hanging the run forever. Sweep kill
  // delays across both workers so the shots land all over that window;
  // every run must return.
  for (const std::size_t victim_gi : {std::size_t{0}, std::size_t{1}}) {
    for (const int delay_us : {0, 200, 800, 3000}) {
      auto state = std::make_shared<SinkState>();
      RunnerConfig config;
      config.backend = TransportBackend::kTcp;
      config.stream_capacity = 4;
      PipelineRunner runner(three_stage(20000, 1, state), config);
      std::mutex mutex;
      std::array<long, 2> pids = {0, 0};
      std::thread killer;
      runner.set_process_hook([&](std::size_t gi, long pid) {
        std::lock_guard lock(mutex);
        if (gi < pids.size()) pids[gi] = pid;
        if (gi != 1) return;
        // Both workers forked — the supervisor is single-threaded until
        // here (the multi-process backends rely on that), so only now may
        // the killer thread exist.
        killer = std::thread([&, delay_us, victim_gi] {
          if (delay_us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
          long target;
          {
            std::lock_guard pid_lock(mutex);
            target = pids[victim_gi];
          }
          if (target > 0) ::kill(static_cast<pid_t>(target), SIGKILL);
        });
      });
      RunOutcome outcome = runner.run_supervised();
      if (killer.joinable()) killer.join();
      // The shot usually lands mid-run and the death must be on record;
      // with the longer delays the run may occasionally outrun it.
      if (!outcome.ok()) {
        EXPECT_FALSE(outcome.stats.error.empty())
            << "victim=" << victim_gi << " delay=" << delay_us;
      }
    }
  }
}

TEST(MultiprocessRunner, SigpipeDispositionRestoredAfterRun) {
  // run_multiprocess ignores SIGPIPE for the duration of the run; an
  // embedding application's own disposition must survive it.
  struct sigaction custom {};
  custom.sa_handler = [](int) {};
  sigemptyset(&custom.sa_mask);
  struct sigaction before {};
  ASSERT_EQ(::sigaction(SIGPIPE, &custom, &before), 0);
  auto state = std::make_shared<SinkState>();
  RunnerConfig config;
  config.backend = TransportBackend::kProc;
  PipelineRunner runner(three_stage(16, 1, state), config);
  RunOutcome outcome = runner.run_supervised();
  struct sigaction after {};
  ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &after), 0);
  ::sigaction(SIGPIPE, &before, nullptr);  // leave the test binary as found
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_EQ(after.sa_handler, custom.sa_handler);
}

}  // namespace
}  // namespace cgp::dc
