// Application end-to-end tests: the four paper applications compile, run
// under Decomp and Default placements at all widths, and agree with the
// sequential oracle; manual pipelines agree with compiled ones.
#include <gtest/gtest.h>

#include "apps/app_configs.h"
#include "apps/manual_filters.h"
#include "codegen/interp.h"
#include "codegen/serialize.h"
#include "driver/compiler.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

struct Oracle {
  std::map<std::string, Value> values;
};

Oracle run_sequential(const apps::AppConfig& config, const std::string& cls) {
  DiagnosticEngine diags;
  auto program = Parser::parse(config.source, diags);
  Sema sema(*program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  Interpreter interp(result.registry, config.runtime_constants);
  Env env = interp.run(cls, "main");
  return Oracle{env.flatten()};
}

CompileResult compile_app(const apps::AppConfig& config, int width = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult result = compile_pipeline(config.source, options);
  EXPECT_TRUE(result.ok) << config.name << ": " << result.diagnostics;
  return result;
}

void expect_close(const Value& a, const Value& b, const std::string& what) {
  EXPECT_TRUE(value_equal(a, b, 1e-6)) << what << ": " << value_to_string(a)
                                       << " vs " << value_to_string(b);
}

class AppsTest : public ::testing::TestWithParam<int> {};

TEST(Apps, IsosurfaceZbufferMatchesOracle) {
  apps::AppConfig config = apps::isosurface_zbuffer_config(false);
  Oracle oracle = run_sequential(config, "IsoZBuffer");
  CompileResult result = compile_app(config);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  for (const Placement& placement :
       {result.decomposition.placement, result.baseline}) {
    PipelineRunResult run = result.make_runner(placement, env).run();
    expect_close(run.finals.at("checksum"), oracle.values.at("checksum"),
                 config.name + " checksum " + placement.to_string());
    expect_close(run.finals.at("lit"), oracle.values.at("lit"),
                 config.name + " lit");
  }
}

TEST(Apps, IsosurfaceActivePixelsMatchesOracle) {
  apps::AppConfig config = apps::isosurface_active_pixels_config(false);
  Oracle oracle = run_sequential(config, "IsoActivePixels");
  CompileResult result = compile_app(config);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  for (const Placement& placement :
       {result.decomposition.placement, result.baseline}) {
    PipelineRunResult run = result.make_runner(placement, env).run();
    expect_close(run.finals.at("checksum"), oracle.values.at("checksum"),
                 config.name + " checksum " + placement.to_string());
    expect_close(run.finals.at("lit"), oracle.values.at("lit"),
                 config.name + " lit");
  }
}

TEST(Apps, KnnMatchesOracle) {
  for (std::int64_t k : {3, 200}) {
    apps::AppConfig config = apps::knn_config(k);
    Oracle oracle = run_sequential(config, "Knn");
    CompileResult result = compile_app(config);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
    PipelineRunResult run =
        result.make_runner(result.decomposition.placement, env).run();
    expect_close(run.finals.at("kth"), oracle.values.at("kth"),
                 config.name + " kth");
    expect_close(run.finals.at("dsum"), oracle.values.at("dsum"),
                 config.name + " dsum");
  }
}

TEST(Apps, KnnBruteForceOracle) {
  // Independent native verification of the k-nearest result.
  apps::AppConfig config = apps::knn_config(3);
  Oracle oracle = run_sequential(config, "Knn");
  const auto& c = config.runtime_constants;
  const std::int64_t npoints = c.at("runtime_define_num_points");
  const double qx = c.at("runtime_define_qx_mille") * 0.001;
  const double qy = c.at("runtime_define_qy_mille") * 0.001;
  const double qz = c.at("runtime_define_qz_mille") * 0.001;
  std::vector<double> dists;
  std::int64_t seed = 123456789;
  for (std::int64_t i = 0; i < npoints; ++i) {
    double coord[3];
    for (int d = 0; d < 3; ++d) {
      seed = (seed * 1103515245 + 12345) % 2147483647;
      coord[d] = static_cast<float>(static_cast<double>(seed % 10000) * 0.0001);
    }
    const double dx = static_cast<float>(coord[0]) - static_cast<float>(qx);
    const double dy = coord[1] - static_cast<float>(qy);
    const double dz = coord[2] - static_cast<float>(qz);
    dists.push_back(static_cast<float>(dx * dx + dy * dy + dz * dz));
  }
  std::sort(dists.begin(), dists.end());
  const double kth_expected = dists[2];
  EXPECT_NEAR(as_double(oracle.values.at("kth")), kth_expected,
              1e-6 * std::max(1.0, kth_expected));
}

TEST(Apps, VmscopeMatchesOracle) {
  for (bool large : {false, true}) {
    apps::AppConfig config = apps::vmscope_config(large);
    Oracle oracle = run_sequential(config, "VMScope");
    CompileResult result = compile_app(config);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
    for (const Placement& placement :
         {result.decomposition.placement, result.baseline}) {
      PipelineRunResult run = result.make_runner(placement, env).run();
      expect_close(run.finals.at("total"), oracle.values.at("total"),
                   config.name + " total " + placement.to_string());
      expect_close(run.finals.at("filled"), oracle.values.at("filled"),
                   config.name + " filled");
    }
  }
}

TEST(Apps, WidthsPreserveResults) {
  apps::AppConfig config = apps::knn_config(3);
  Oracle oracle = run_sequential(config, "Knn");
  for (int width : {2, 4}) {
    CompileResult result = compile_app(config, width);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    PipelineRunResult run =
        result.make_runner(result.decomposition.placement, env).run();
    expect_close(run.finals.at("kth"), oracle.values.at("kth"),
                 "knn width " + std::to_string(width));
  }
}

TEST(Apps, ManualKnnMatchesCompiled) {
  apps::AppConfig config = apps::knn_config(3);
  Oracle oracle = run_sequential(config, "Knn");
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  PipelineRunResult manual = apps::run_knn_manual(config.runtime_constants, env);
  expect_close(manual.finals.at("kth"), oracle.values.at("kth"), "manual kth");
  expect_close(manual.finals.at("dsum"), oracle.values.at("dsum"),
               "manual dsum");
}

TEST(Apps, ManualVmscopeMatchesCompiled) {
  for (bool large : {false, true}) {
    apps::AppConfig config = apps::vmscope_config(large);
    Oracle oracle = run_sequential(config, "VMScope");
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
    PipelineRunResult manual =
        apps::run_vmscope_manual(config.runtime_constants, env);
    expect_close(manual.finals.at("total"), oracle.values.at("total"),
                 config.name + " manual total");
    expect_close(manual.finals.at("filled"), oracle.values.at("filled"),
                 config.name + " manual filled");
  }
}

TEST(Apps, DecompReducesLinkVolume) {
  // The headline mechanism: compiler decomposition reduces bytes on the
  // data->compute link versus the Default forward-everything version.
  for (apps::AppConfig config :
       {apps::isosurface_zbuffer_config(false), apps::knn_config(3)}) {
    CompileResult result = compile_app(config);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
    PipelineRunResult decomp =
        result.make_runner(result.decomposition.placement, env).run();
    PipelineRunResult fallback =
        result.make_runner(result.baseline, env).run();
    EXPECT_LT(decomp.link_packet_bytes[0], fallback.link_packet_bytes[0])
        << config.name;
  }
}

}  // namespace
}  // namespace cgp
