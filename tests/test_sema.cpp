// Sema unit tests: symbol resolution, typing rules, reduction detection.
#include <gtest/gtest.h>

#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

struct SemaRun {
  std::unique_ptr<Program> program;
  SemaResult result;
  std::string diagnostics;
  bool had_errors = false;
};

SemaRun run_sema(std::string_view source) {
  SemaRun run;
  DiagnosticEngine diags;
  run.program = Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  Sema sema(*run.program, diags);
  run.result = sema.run();
  run.diagnostics = diags.render();
  run.had_errors = diags.has_errors();
  return run;
}

TEST(Sema, SimpleProgramChecks) {
  SemaRun run = run_sema(R"(
    class A {
      int x;
      int get() { return x; }
      void set(int v) { x = v; }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
  const ClassInfo* info = run.result.registry.find("A");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->fields.size(), 1u);
  EXPECT_EQ(info->methods.size(), 2u);
}

TEST(Sema, ReductionClassDetected) {
  SemaRun run = run_sema(R"(
    interface Reducinterface { }
    class Acc implements Reducinterface { double total; }
    class Other { double total; }
  )");
  EXPECT_FALSE(run.had_errors);
  EXPECT_TRUE(run.result.registry.find("Acc")->is_reduction);
  EXPECT_FALSE(run.result.registry.find("Other")->is_reduction);
}

TEST(Sema, UndeclaredVariable) {
  SemaRun run = run_sema("class A { void f() { x = 3; } }");
  EXPECT_TRUE(run.had_errors);
  EXPECT_NE(run.diagnostics.find("undeclared identifier"), std::string::npos);
}

TEST(Sema, UnknownClassInDecl) {
  SemaRun run = run_sema("class A { void f() { Nope n = null; } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, TypeMismatchAssignBoolToInt) {
  SemaRun run = run_sema("class A { void f() { int x = true; } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, NumericWideningAllowed) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        double d = 3;
        float g = 1.5;
        long l = 2;
        int narrowed = 3.7;
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, ForeachOverRectdomainBindsInt) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        foreach (i in [0 : 9]) {
          int x = i + 1;
        }
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, ForeachOverArrayBindsElement) {
  SemaRun run = run_sema(R"(
    class P { float x; }
    class A {
      void f(P[] ps) {
        foreach (q in ps) {
          float v = q.x;
        }
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, ForeachOverScalarRejected) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        foreach (i in 5) { int x = i; }
      }
    }
  )");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, PipelinedLoopDomainMustBeRectdomain) {
  SemaRun run = run_sema(R"(
    class A {
      void f(int[] xs) {
        PipelinedLoop (p in xs) { int y = p; }
      }
    }
  )");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, MethodArityChecked) {
  SemaRun run = run_sema(R"(
    class A {
      void g(int a) { }
      void f() { g(1, 2); }
    }
  )");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, UnknownMethod) {
  SemaRun run = run_sema(R"(
    class B { }
    class A { void f(B b) { b.nope(); } }
  )");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, IntrinsicsTyped) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        double a = sqrt(2.0);
        double b = min(1.0, 2.0);
        int c = min(1, 2);
        double d = pow(2.0, 10.0);
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, IntrinsicArityError) {
  SemaRun run = run_sema("class A { void f() { double a = sqrt(1.0, 2.0); } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, RuntimeDefineIsInt) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        int n = runtime_define_x;
        long m = runtime_define_x * 2;
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
  ASSERT_EQ(run.result.runtime_constants.size(), 1u);
  EXPECT_EQ(run.result.runtime_constants[0], "runtime_define_x");
}

TEST(Sema, ArrayLengthField) {
  SemaRun run = run_sema(R"(
    class A {
      int f(float[] xs) { return xs.length; }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, FieldAccessOnPrimitiveRejected) {
  SemaRun run = run_sema("class A { void f(int x) { int y = x.z; } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, DuplicateClassRejected) {
  SemaRun run = run_sema("class A { } class A { }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, DuplicateMethodRejected) {
  SemaRun run = run_sema("class A { void f() { } void f() { } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, RedeclarationInScopeRejected) {
  SemaRun run = run_sema("class A { void f() { int x = 1; int x = 2; } }");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        int x = 1;
        if (x > 0) {
          float x = 2.0;
          float y = x;
        }
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

TEST(Sema, ConstructorArgsChecked) {
  SemaRun run = run_sema(R"(
    class B {
      int v;
      B(int x) { v = x; }
    }
    class A { void f() { B b = new B(); } }
  )");
  EXPECT_TRUE(run.had_errors);
}

TEST(Sema, ReductionFieldOverwriteInForeachWarns) {
  SemaRun run = run_sema(R"(
    interface Reducinterface { }
    class Acc implements Reducinterface {
      double total;
    }
    class A {
      void f(Acc acc) {
        foreach (i in [0 : 9]) {
          acc.total = 5.0;
        }
      }
    }
  )");
  EXPECT_FALSE(run.had_errors);
  EXPECT_NE(run.diagnostics.find("reduction-object field"), std::string::npos);
}

TEST(Sema, ForeachCountAssigned) {
  SemaRun run = run_sema(R"(
    class A {
      void f() {
        foreach (i in [0 : 1]) { int a = i; }
        foreach (j in [0 : 1]) { int b = j; }
      }
    }
  )");
  EXPECT_EQ(run.result.foreach_count, 2);
}

TEST(Sema, AllAppSourcesTypeCheck) {
  // The four paper applications plus the tutorial must be clean.
  // (Sources are exercised end-to-end elsewhere; this isolates sema.)
  SemaRun run = run_sema(R"(
    interface Reducinterface { }
    class Acc implements Reducinterface {
      double total;
      Acc() { total = 0.0; }
      void add(double v) { total = total + v; }
      void merge(Acc other) { total = total + other.total; }
    }
    class Tiny {
      void main() {
        int n = runtime_define_num_items;
        double[] data = new double[n];
        foreach (i in [0 : n - 1]) { data[i] = i * 0.5; }
        Acc acc = new Acc();
        PipelinedLoop (p in [0 : runtime_define_num_packets - 1]) {
          foreach (i in [0 : n - 1]) { acc.add(data[i]); }
        }
      }
    }
  )");
  EXPECT_FALSE(run.had_errors) << run.diagnostics;
}

}  // namespace
}  // namespace cgp
