// Pipeline model tests: segmentation, boundary graph, ReqComm propagation.
#include <gtest/gtest.h>

#include "analysis/pipeline_model.h"
#include "apps/app_configs.h"
#include "parser/parser.h"

namespace cgp {
namespace {

PipelineModel build(std::string_view source, DiagnosticEngine& diags,
                    std::unique_ptr<Program>& keep_alive) {
  keep_alive = Parser::parse(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return build_pipeline_model(*keep_alive, diags);
}

TEST(PipelineModel, TinySegmentation) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  PipelineModel model = build(config.source, diags, program);
  ASSERT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_EQ(model.filters.size(), 3u);
  EXPECT_EQ(model.filters[0].stmts.size(), 2u);  // base + sq decls
  EXPECT_EQ(model.filters[1].stmts[0]->kind, NodeKind::ForeachStmt);
  EXPECT_EQ(model.filters[2].stmts[0]->kind, NodeKind::ForeachStmt);
  EXPECT_EQ(model.loop_var, "p");
  EXPECT_EQ(model.before.size(), 6u);  // n/npackets/psize/data decls, init loop, acc
  EXPECT_EQ(model.after.size(), 1u);   // result decl
}

TEST(PipelineModel, ReqCommShrinksAfterReduction) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  PipelineModel model = build(config.source, diags, program);
  ASSERT_EQ(model.req_comm.size(), 3u);
  // After the last filter only post-loop needs remain (none: acc is a
  // reduction and `result` is computed from it).
  EXPECT_TRUE(model.req_comm[2].empty()) << model.req_comm[2].to_string();
  // Between squaring and accumulation: sq[] section.
  EXPECT_FALSE(model.req_comm[1].empty());
  bool found_sq = false;
  for (const auto& [id, entry] : model.req_comm[1].items()) {
    if (id.base == "sq") found_sq = true;
  }
  EXPECT_TRUE(found_sq) << model.req_comm[1].to_string();
}

TEST(PipelineModel, InputReqIsPacketRelative) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  PipelineModel model = build(config.source, diags, program);
  // input_req must reference `data` with a section in terms of the packet
  // variable p (base substituted away).
  const ValueEntry* data_entry =
      model.input_req.find(ValueId{"data", {kElemStep}});
  ASSERT_NE(data_entry, nullptr) << model.input_req.to_string();
  ASSERT_TRUE(data_entry->section.has_value());
  std::string section = data_entry->section->to_string();
  EXPECT_NE(section.find("p"), std::string::npos) << section;
  EXPECT_EQ(section.find("base"), std::string::npos) << section;
}

TEST(PipelineModel, ReductionDeclsFound) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  PipelineModel model = build(config.source, diags, program);
  ASSERT_EQ(model.reduction_decls.size(), 1u);
  EXPECT_EQ(model.reduction_decls.begin()->first, "acc");
  EXPECT_EQ(model.after_reductions.count("acc"), 1u);
  // The accumulate filter touches the reduction.
  EXPECT_EQ(model.sets[2].reductions.count("acc"), 1u);
}

TEST(PipelineModel, NoPipelinedLoopIsError) {
  DiagnosticEngine diags;
  std::unique_ptr<Program> program;
  PipelineModel model =
      build("class A { void main() { int x = 1; } }", diags, program);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(model.filters.empty());
}

TEST(PipelineModel, AppsAllBuild) {
  for (const apps::AppConfig& config :
       {apps::isosurface_zbuffer_config(false),
        apps::isosurface_active_pixels_config(false), apps::knn_config(3),
        apps::vmscope_config(false)}) {
    DiagnosticEngine diags;
    std::unique_ptr<Program> program;
    PipelineModel model = build(config.source, diags, program);
    EXPECT_FALSE(diags.has_errors())
        << config.name << ": " << diags.render();
    EXPECT_GE(model.filters.size(), 3u) << config.name;
    EXPECT_TRUE(model.graph.is_chain()) << config.name;
    EXPECT_FALSE(model.reduction_decls.empty()) << config.name;
  }
}

// ---------------------------------------------------------------------------
// Candidate boundary graph
// ---------------------------------------------------------------------------

TEST(BoundaryGraph, ChainProperties) {
  auto graph = CandidateBoundaryGraph::chain({"b1", "b2", "b3"});
  EXPECT_TRUE(graph.is_acyclic());
  EXPECT_TRUE(graph.is_chain());
  EXPECT_EQ(graph.node_count(), 5);  // start + 3 + end
  auto paths = graph.flow_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 5u);
}

TEST(BoundaryGraph, DiamondFlowPaths) {
  CandidateBoundaryGraph graph;
  int b1 = graph.add_boundary("left");
  int b2 = graph.add_boundary("right");
  int b3 = graph.add_boundary("join");
  graph.set_end();
  graph.add_edge(CandidateBoundaryGraph::kStart, b1);
  graph.add_edge(CandidateBoundaryGraph::kStart, b2);
  graph.add_edge(b1, b3);
  graph.add_edge(b2, b3);
  graph.add_edge(b3, graph.end_node());
  EXPECT_TRUE(graph.is_acyclic());
  EXPECT_FALSE(graph.is_chain());
  EXPECT_EQ(graph.flow_paths().size(), 2u);
}

TEST(BoundaryGraph, CycleDetected) {
  CandidateBoundaryGraph graph;
  int b1 = graph.add_boundary("a");
  int b2 = graph.add_boundary("b");
  graph.set_end();
  graph.add_edge(CandidateBoundaryGraph::kStart, b1);
  graph.add_edge(b1, b2);
  graph.add_edge(b2, b1);  // back edge
  graph.add_edge(b2, graph.end_node());
  EXPECT_FALSE(graph.is_acyclic());
}

}  // namespace
}  // namespace cgp
