// Self-healing multi-process runs (docs/ROBUSTNESS.md, self-healing runs):
// seeded worker-kill chaos storms over the proc and tcp backends, where
// workers SIGKILL themselves mid-batch and the supervisor must resurrect
// them in-run — quiesce the links, re-fork the topology, roll back to the
// last in-memory consistent cut, replay the tail — converging to the
// fault-free oracle with no checkpoint file and no --resume. Plus the
// degradation path (restart budget exhausted -> partial result), the
// heartbeat-fed stall watchdog, and liveness kills after a heartbeat
// lapse. Suite names all carry "WorkerRespawn" so CI can select them with
// `ctest -R WorkerRespawn` (and exclude the "/tcp" instantiations under
// TSan, which does not model the TCP channel's cross-process ordering).
//
// The kill mechanism is deliberately in-process: a worker that reaches
// the shot ordinal claims one of N exclusive marker files and raises the
// signal on itself. That keeps every fork single-threaded on the
// supervisor side (no sniper thread alive across respawn re-forks, which
// multi-threaded-fork-averse TSan would reject) while still delivering a
// real SIGKILL: no unwind, no flush, the frame on the wire torn mid-batch.
// Claims are crash-safe by construction — the marker lands before the
// shot — so each worker dies exactly its quota across incarnations.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datacutter/buffer.h"
#include "datacutter/runner.h"
#include "support/rng.h"

namespace cgp::dc {
namespace {

std::uint64_t storm_seed() {
  if (const char* env = std::getenv("CHAOS_SOAK_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260808ull;
}

// TSan's instrumentation can deschedule a perfectly healthy heartbeat
// thread past a native-speed lapse window, turning a liveness safeguard
// into a false positive. Scale every timing knob in this suite so the
// window stays generous relative to the tool's slowdown.
#if defined(__SANITIZE_THREAD__)
constexpr double kTimeScale = 10.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kTimeScale = 10.0;
#else
constexpr double kTimeScale = 1.0;
#endif
#else
constexpr double kTimeScale = 1.0;
#endif

// --- The self-shooting kill switch.

struct KillSpec {
  std::string tag;      // marker-file prefix; empty = never fire
  int quota = 0;        // incarnations that die; < 0 = every incarnation
  std::int64_t at = 0;  // per-incarnation packet ordinal of the shot
  int signo = SIGKILL;
};

// Claims one of `quota` exclusive marker files; true = this incarnation
// takes the shot. The O_EXCL create is the whole protocol: whichever
// incarnation wins the file owns that slot forever, even though it dies
// a microsecond later.
bool claim_shot(const std::string& tag, int quota) {
  if (quota < 0) return true;
  for (int k = 0; k < quota; ++k) {
    const std::string path = tag + "." + std::to_string(k);
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    if (errno != EEXIST) return false;
  }
  return false;
}

void clear_shots(const std::string& tag, int quota) {
  for (int k = 0; k < std::max(quota, 0) + 2; ++k)
    std::remove((tag + "." + std::to_string(k)).c_str());
}

// Serialized per process: with replicated copies inside one worker, only
// the first copy to reach the ordinal claims a slot — the process dies
// once, so a second concurrent claim would silently burn quota.
void maybe_fire(const KillSpec& kill, std::int64_t done) {
  static std::mutex mutex;
  static bool fired = false;
  if (kill.tag.empty() || done != kill.at) return;
  std::lock_guard lock(mutex);
  if (fired) return;
  if (claim_shot(kill.tag, kill.quota)) {
    fired = true;
    ::raise(kill.signo);
  }
}

// --- The storm pipeline: integer packets, a stateful adder, and a sink
// --- whose delivered sequence fingerprints the run.

class StormSource : public Filter {
 public:
  StormSource(int n, KillSpec kill) : n_(n), kill_(std::move(kill)) {}
  void process(FilterContext& ctx) override {
    std::int64_t sent = 0;
    for (int i = 0; i < n_; ++i) {
      if (i % ctx.copy_count() != ctx.copy_index()) continue;
      Buffer b;
      b.write<std::int64_t>(i);
      ctx.emit(std::move(b));
      maybe_fire(kill_, ++sent);
    }
  }

 private:
  int n_;
  KillSpec kill_;
};

// Stateful middle stage: forwards v+1 and carries a per-copy running sum
// that only cut restore keeps exact across resurrections. The per-packet
// stall stretches the run so shots land mid-stream, never racing EOS.
// The shot ordinal is counted per incarnation (not snapshotted), so a
// restored instance walks back into the gun until its quota is spent.
class StormAdder : public Filter {
 public:
  StormAdder(KillSpec kill, std::chrono::microseconds stall)
      : kill_(std::move(kill)), stall_(stall) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      if (stall_.count() > 0) std::this_thread::sleep_for(stall_);
      const std::int64_t v = b->read<std::int64_t>();
      carried_ += v;
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
      maybe_fire(kill_, ++seen_);
    }
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(carried_);
    return true;
  }
  void restore_state(Buffer& in) override {
    carried_ = in.read<std::int64_t>();
  }

 private:
  KillSpec kill_;
  std::chrono::microseconds stall_;
  std::int64_t carried_ = 0;
  std::int64_t seen_ = 0;
};

// An adder that wedges (no read, no emit, no exit) at a fixed ordinal:
// heartbeats keep flowing — the thread is alive — but progress freezes,
// which is exactly the case the remote stall watchdog exists for.
class WedgingAdder : public Filter {
 public:
  explicit WedgingAdder(std::int64_t hang_at) : hang_at_(hang_at) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) {
      if (++seen_ == hang_at_)
        std::this_thread::sleep_for(std::chrono::seconds(60));
      const std::int64_t v = b->read<std::int64_t>();
      Buffer out;
      out.write<std::int64_t>(v + 1);
      ctx.emit(std::move(out));
    }
  }

 private:
  std::int64_t hang_at_;
  std::int64_t seen_ = 0;
};

struct SinkState {
  std::mutex mutex;
  // Finalize OVERWRITES its copy's slot: the sink finalizes once per
  // healing attempt (teardown quiesces its stream to EOS), and only the
  // last attempt's delivery may stand — an inserting sink would count
  // every attempt's prefix.
  std::map<int, std::vector<std::int64_t>> by_copy;
};

class StormSink : public Filter {
 public:
  explicit StormSink(std::shared_ptr<SinkState> state)
      : state_(std::move(state)) {}
  void process(FilterContext& ctx) override {
    while (auto b = ctx.read()) local_.push_back(b->read<std::int64_t>());
  }
  void finalize(FilterContext& ctx) override {
    std::lock_guard lock(state_->mutex);
    state_->by_copy[ctx.copy_index()] = local_;
  }
  bool snapshot_state(Buffer& out) override {
    out.write<std::int64_t>(static_cast<std::int64_t>(local_.size()));
    for (const std::int64_t v : local_) out.write<std::int64_t>(v);
    return true;
  }
  void restore_state(Buffer& in) override {
    const std::int64_t n = in.read<std::int64_t>();
    local_.clear();
    for (std::int64_t i = 0; i < n; ++i)
      local_.push_back(in.read<std::int64_t>());
  }

 private:
  std::shared_ptr<SinkState> state_;
  std::vector<std::int64_t> local_;
};

std::multiset<std::int64_t> delivered(const SinkState& state) {
  std::multiset<std::int64_t> out;
  for (const auto& [copy, values] : state.by_copy)
    out.insert(values.begin(), values.end());
  return out;
}

// The fault-free oracle: every source value shifted once by the adder.
std::multiset<std::int64_t> oracle(int packets) {
  std::multiset<std::int64_t> out;
  for (int i = 0; i < packets; ++i) out.insert(i + 1);
  return out;
}

std::vector<std::int64_t> oracle_sequence(int packets) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < packets; ++i) out.push_back(i + 1);
  return out;
}

struct StormShape {
  int packets = 64;
  int src_copies = 1;
  int mid_copies = 1;
  int sink_copies = 1;
  std::size_t batch = 1;
  std::size_t interval = 3;  // cut cadence: in-memory restore points
  std::size_t capacity = 8;
};

std::vector<FilterGroup> storm_groups(const StormShape& shape,
                                      std::shared_ptr<SinkState> state,
                                      KillSpec src_kill, KillSpec mid_kill,
                                      std::chrono::microseconds stall) {
  std::vector<FilterGroup> groups;
  groups.push_back({"src",
                    [n = shape.packets, src_kill] {
                      return std::make_unique<StormSource>(n, src_kill);
                    },
                    shape.src_copies, 0});
  groups.push_back({"mid",
                    [mid_kill, stall] {
                      return std::make_unique<StormAdder>(mid_kill, stall);
                    },
                    shape.mid_copies, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<StormSink>(state); },
       shape.sink_copies, 2});
  return groups;
}

RunnerConfig storm_config(TransportBackend backend, const StormShape& shape,
                          int restarts, double heartbeat_seconds) {
  RunnerConfig config;
  config.stream_capacity = shape.capacity;
  config.batch_size = shape.batch;
  config.checkpoint_interval = shape.interval;  // no checkpoint_path: the
                                                // cuts live in memory only
  config.backend = backend;
  config.worker_restarts = restarts;
  config.heartbeat_seconds = heartbeat_seconds;
  config.teardown_grace_ms = 500;
  return config;
}

FaultPolicy storm_policy() {
  FaultPolicy policy;
  policy.action = FaultAction::kRestartCopy;
  policy.max_retries = 3;
  policy.backoff_initial_seconds = 1e-4;
  policy.backoff_max_seconds = 1e-3;
  return policy;
}

int respawns_of(const RunStats& stats, const std::string& group) {
  return static_cast<int>(
      std::count_if(stats.respawns.begin(), stats.respawns.end(),
                    [&](const support::RespawnRecord& r) {
                      return r.group == group;
                    }));
}

// ---------------------------------------------------------------------------
// The storm: each non-sink worker is SIGKILLed at least twice mid-batch,
// on both process backends, over a single-copy/unbatched shape (delivery
// must be byte-identical, in order) and a replicated+batched shape
// (multiset-equal). The run converges in-run — one run_supervised call,
// no checkpoint file, no resume — to the fault-free oracle.
// ---------------------------------------------------------------------------

class WorkerRespawnStorm : public ::testing::TestWithParam<TransportBackend> {
};

TEST_P(WorkerRespawnStorm, SeededKillStormConvergesInRunToTheOracle) {
  const TransportBackend backend = GetParam();
  const char* bname = backend == TransportBackend::kProc ? "proc" : "tcp";
  Rng rng(storm_seed() ^
          (backend == TransportBackend::kProc ? 0x5e1full : 0x7cb1ull));
  struct Round {
    StormShape shape;
    bool ordered;  // single copies everywhere: order is deterministic
  };
  const Round rounds[] = {
      {{64, 1, 1, 1, /*batch=*/1, /*interval=*/3, /*capacity=*/8}, true},
      {{96, 2, 2, 2, /*batch=*/4, /*interval=*/4, /*capacity=*/8}, false},
  };
  int round_index = 0;
  for (const Round& round : rounds) {
    const std::string base = "cgp_respawn_storm_" + std::string(bname) + "_" +
                             std::to_string(round_index++) + "_" +
                             std::to_string(storm_seed());
    const KillSpec src_kill{base + ".src", 2,
                            2 + static_cast<std::int64_t>(rng.next_below(3)),
                            SIGKILL};
    const KillSpec mid_kill{base + ".mid", 2,
                            2 + static_cast<std::int64_t>(rng.next_below(4)),
                            SIGKILL};
    clear_shots(src_kill.tag, src_kill.quota);
    clear_shots(mid_kill.tag, mid_kill.quota);
    auto state = std::make_shared<SinkState>();
    PipelineRunner runner(
        storm_groups(round.shape, state, src_kill, mid_kill,
                     std::chrono::microseconds(100)),
        storm_config(backend, round.shape, /*restarts=*/8,
                     /*heartbeat_seconds=*/0.05 * kTimeScale),
        storm_policy());
    RunOutcome outcome = runner.run_supervised();
    clear_shots(src_kill.tag, src_kill.quota);
    clear_shots(mid_kill.tag, mid_kill.quota);
    ASSERT_TRUE(outcome.ok()) << bname << ": " << outcome.stats.error;
    EXPECT_TRUE(outcome.stats.completed);
    EXPECT_EQ(outcome.disposition, RunOutcome::kComplete);
    EXPECT_FALSE(outcome.stats.degraded);
    // Every non-sink worker drew blood at least its quota: one respawn
    // record per resurrection, MTTR stamped when the next handshake
    // completed.
    EXPECT_GE(respawns_of(outcome.stats, "src"), 2) << bname;
    EXPECT_GE(respawns_of(outcome.stats, "mid"), 2) << bname;
    for (const support::RespawnRecord& r : outcome.stats.respawns) {
      EXPECT_GE(r.restart, 1);
      EXPECT_GE(r.mttr_seconds, 0.0);
      EXPECT_LT(r.mttr_seconds, 60.0);
      EXPECT_GE(r.at_seconds, 0.0);
      EXPECT_FALSE(r.cause.empty());
    }
    EXPECT_EQ(delivered(*state), oracle(round.shape.packets))
        << bname << " round " << round_index;
    if (round.ordered) {
      ASSERT_EQ(state->by_copy.size(), 1u);
      EXPECT_EQ(state->by_copy[0], oracle_sequence(round.shape.packets))
          << bname << ": delivery must be byte-identical at one copy";
    }
    // Heartbeats were on: the supervisor heard from both workers.
    EXPECT_GE(outcome.stats.heartbeats.size(), 1u);
    for (const support::HeartbeatMetrics& h : outcome.stats.heartbeats)
      EXPECT_GT(h.beats, 0) << h.group;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, WorkerRespawnStorm,
    ::testing::Values(TransportBackend::kProc, TransportBackend::kTcp),
    [](const ::testing::TestParamInfo<TransportBackend>& info) {
      return info.param == TransportBackend::kProc ? std::string("proc")
                                                   : std::string("tcp");
    });

// ---------------------------------------------------------------------------
// Degradation: a worker that dies every incarnation exhausts a budget of
// one restart; the run must end kDegraded — error pointer null, partial
// result from the surviving stages intact and a strict subset of the
// oracle, the exhausted stage named in stats.error.
// ---------------------------------------------------------------------------

TEST(WorkerRespawnDegrade, ExhaustedBudgetDrainsSurvivorsToAPartialResult) {
  const StormShape shape{64, 1, 1, 1, /*batch=*/1, /*interval=*/2,
                         /*capacity=*/8};
  const KillSpec mid_kill{"cgp_respawn_degrade", /*quota=*/-1, /*at=*/2,
                          SIGKILL};
  auto state = std::make_shared<SinkState>();
  PipelineRunner runner(
      storm_groups(shape, state, KillSpec{}, mid_kill,
                   std::chrono::microseconds(100)),
      // No heartbeats: SIGKILL deaths reach the reaper through waitpid
      // alone, and a spuriously slow scheduler can't charge a lapse kill
      // against the one-restart budget.
      storm_config(TransportBackend::kProc, shape, /*restarts=*/1,
                   /*heartbeat_seconds=*/0.0),
      storm_policy());
  RunOutcome outcome = runner.run_supervised();
  EXPECT_TRUE(outcome.degraded());
  EXPECT_EQ(outcome.disposition, RunOutcome::kDegraded);
  EXPECT_TRUE(outcome.ok()) << "degraded keeps error null: the partial "
                               "result stands, nothing may be rethrown";
  EXPECT_TRUE(outcome.stats.degraded);
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("restart budget"), std::string::npos)
      << outcome.stats.error;
  EXPECT_NE(outcome.stats.error.find("mid"), std::string::npos)
      << outcome.stats.error;
  // Exactly one resurrection happened before the budget ran out, and the
  // exhausting death is recorded as a dead-copy fault.
  EXPECT_EQ(outcome.stats.respawns.size(), 1u);
  EXPECT_TRUE(std::any_of(
      outcome.stats.faults.begin(), outcome.stats.faults.end(),
      [](const support::FaultRecord& f) {
        return f.resolution == support::FaultResolution::kCopyDead;
      }));
  // The surviving prefix drained to the sink: at-most the oracle, never
  // an invented or double-counted value.
  const std::multiset<std::int64_t> got = delivered(*state);
  const std::multiset<std::int64_t> want = oracle(shape.packets);
  EXPECT_TRUE(
      std::includes(want.begin(), want.end(), got.begin(), got.end()));
  EXPECT_LT(got.size(), want.size());
}

// ---------------------------------------------------------------------------
// Stall watchdog over heartbeat mirrors: a worker whose thread is alive
// (beats keep arriving) but whose progress counter freezes must trip the
// no-progress watchdog — the rule the thread backend has always enforced,
// now fed remotely. The wedged worker then ignores the abort broadcast,
// so the reaper's escalation (teardown_grace_ms) has to SIGKILL it.
// ---------------------------------------------------------------------------

TEST(WorkerRespawnWatchdog, HeartbeatMirrorsFeedTheStallWatchdog) {
  const StormShape shape{32, 1, 1, 1, /*batch=*/1, /*interval=*/0,
                         /*capacity=*/8};
  auto state = std::make_shared<SinkState>();
  std::vector<FilterGroup> groups;
  groups.push_back({"src",
                    [n = shape.packets] {
                      return std::make_unique<StormSource>(n, KillSpec{});
                    },
                    1, 0});
  groups.push_back(
      {"mid", [] { return std::make_unique<WedgingAdder>(3); }, 1, 1});
  groups.push_back(
      {"sink", [state] { return std::make_unique<StormSink>(state); }, 1, 2});
  // A couple of spare restarts so a tool-slowed scheduler's false lapse
  // kill heals instead of failing the run with the wrong error: the
  // watchdog ends the run kFailed regardless of the healing budget.
  RunnerConfig config = storm_config(TransportBackend::kProc, shape,
                                     /*restarts=*/2,
                                     /*heartbeat_seconds=*/0.05 * kTimeScale);
  config.teardown_grace_ms = static_cast<std::int64_t>(100 * kTimeScale);
  FaultPolicy policy = storm_policy();
  policy.stage_timeout_seconds = 0.3 * kTimeScale;
  PipelineRunner runner(std::move(groups), config, policy);
  RunOutcome outcome = runner.run_supervised();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.disposition, RunOutcome::kFailed);
  EXPECT_FALSE(outcome.stats.completed);
  EXPECT_NE(outcome.stats.error.find("watchdog"), std::string::npos)
      << outcome.stats.error;
  EXPECT_NE(outcome.stats.error.find("no progress"), std::string::npos)
      << outcome.stats.error;
  EXPECT_NE(outcome.stats.error.find("mid"), std::string::npos)
      << outcome.stats.error;
  EXPECT_TRUE(std::any_of(
      outcome.stats.faults.begin(), outcome.stats.faults.end(),
      [](const support::FaultRecord& f) {
        return f.resolution == support::FaultResolution::kWatchdog;
      }));
}

// ---------------------------------------------------------------------------
// Heartbeat lapse: a worker that goes completely silent (SIGSTOP freezes
// every thread, including its heartbeat sender) is liveness-killed by the
// supervisor after the lapse window and resurrected like any other
// organic death; the run still converges to the oracle.
// ---------------------------------------------------------------------------

TEST(WorkerRespawnLapse, SilentWorkerIsLivenessKilledAndResurrected) {
  const StormShape shape{48, 1, 1, 1, /*batch=*/1, /*interval=*/3,
                         /*capacity=*/8};
  const std::string tag =
      "cgp_respawn_lapse_" + std::to_string(storm_seed());
  const KillSpec mid_kill{tag, /*quota=*/1, /*at=*/2, SIGSTOP};
  clear_shots(tag, mid_kill.quota);
  auto state = std::make_shared<SinkState>();
  PipelineRunner runner(
      storm_groups(shape, state, KillSpec{}, mid_kill,
                   std::chrono::microseconds(100)),
      storm_config(TransportBackend::kProc, shape, /*restarts=*/5,
                   /*heartbeat_seconds=*/0.05 * kTimeScale),
      storm_policy());
  RunOutcome outcome = runner.run_supervised();
  clear_shots(tag, mid_kill.quota);
  ASSERT_TRUE(outcome.ok()) << outcome.stats.error;
  EXPECT_TRUE(outcome.stats.completed);
  EXPECT_EQ(delivered(*state), oracle(shape.packets));
  ASSERT_GE(outcome.stats.respawns.size(), 1u);
  EXPECT_TRUE(std::any_of(
      outcome.stats.respawns.begin(), outcome.stats.respawns.end(),
      [](const support::RespawnRecord& r) {
        return r.group == "mid" &&
               r.cause.find("heartbeat lapse") != std::string::npos;
      }))
      << outcome.stats.respawns[0].cause;
}

}  // namespace
}  // namespace cgp::dc
