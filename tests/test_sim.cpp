// Discrete-event pipeline simulator tests.
#include <gtest/gtest.h>

#include "sim/pipeline_sim.h"

namespace cgp {
namespace {

EnvironmentSpec simple_env(int width = 1) {
  EnvironmentSpec env;
  env.units = {ComputeUnit{"data", 100.0, width},
               ComputeUnit{"compute", 100.0, width},
               ComputeUnit{"view", 100.0, 1}};
  env.links = {Link{100.0, 0.0, width}, Link{100.0, 0.0, 1}};
  return env;
}

TEST(Sim, SinglePacketIsTraversalTime) {
  EnvironmentSpec env = simple_env();
  auto packets = uniform_trace(1, {100.0, 200.0, 50.0}, {100.0, 10.0});
  SimResult result = simulate_pipeline(env, packets);
  // 1 + 2 + 0.5 compute + 1 + 0.1 comm = 4.6
  EXPECT_NEAR(result.total_time, 4.6, 1e-9);
}

TEST(Sim, SteadyStateMatchesFormula) {
  EnvironmentSpec env = simple_env();
  const std::int64_t n = 200;
  auto packets = uniform_trace(n, {100.0, 300.0, 50.0}, {50.0, 10.0});
  SimResult result = simulate_pipeline(env, packets);
  // Bottleneck: compute stage at 3.0 s/packet.
  double expected =
      static_cast<double>(n - 1) * 3.0 + (1.0 + 3.0 + 0.5 + 0.5 + 0.1);
  EXPECT_NEAR(result.total_time, expected, 1e-6);
  EXPECT_FALSE(result.bottleneck_is_link);
  EXPECT_EQ(result.bottleneck_name, "compute");
}

TEST(Sim, LinkBottleneck) {
  EnvironmentSpec env = simple_env();
  auto packets = uniform_trace(100, {10.0, 10.0, 10.0}, {1000.0, 10.0});
  SimResult result = simulate_pipeline(env, packets);
  EXPECT_TRUE(result.bottleneck_is_link);
  EXPECT_EQ(result.bottleneck_name, "L1");
  // Link at 10 s/packet dominates; traversal = 3x0.1 + 10 + 0.1.
  EXPECT_NEAR(result.total_time, 99.0 * 10.0 + 10.4, 1e-6);
}

TEST(Sim, WideningRemovesBottleneck) {
  auto packets = uniform_trace(64, {100.0, 400.0, 10.0}, {50.0, 10.0});
  SimResult w1 = simulate_pipeline(simple_env(1), packets);
  SimResult w2 = simulate_pipeline(simple_env(2), packets);
  SimResult w4 = simulate_pipeline(simple_env(4), packets);
  // Near-linear scaling while compute dominates.
  EXPECT_GT(w1.total_time / w2.total_time, 1.7);
  EXPECT_GT(w2.total_time / w4.total_time, 1.5);
}

TEST(Sim, WidthDoesNotHelpSerialSink) {
  // If the view stage dominates, width does nothing (copies=1 there).
  auto packets = uniform_trace(64, {10.0, 10.0, 500.0}, {1.0, 1.0});
  SimResult w1 = simulate_pipeline(simple_env(1), packets);
  SimResult w4 = simulate_pipeline(simple_env(4), packets);
  EXPECT_NEAR(w1.total_time / w4.total_time, 1.0, 0.05);
}

TEST(Sim, NonUniformPacketsHandled) {
  EnvironmentSpec env = simple_env();
  std::vector<PacketTrace> packets;
  for (int i = 0; i < 10; ++i) {
    PacketTrace trace;
    trace.stage_ops = {10.0, i % 2 == 0 ? 500.0 : 10.0, 10.0};
    trace.link_bytes = {10.0, 10.0};
    packets.push_back(trace);
  }
  SimResult result = simulate_pipeline(env, packets);
  // 5 heavy packets x 5s on the compute stage bound the makespan.
  EXPECT_GE(result.total_time, 25.0);
}

TEST(Sim, EpilogueAddsMergeHandoff) {
  EnvironmentSpec env = simple_env(2);
  auto packets = uniform_trace(16, {10.0, 10.0, 10.0}, {10.0, 10.0});
  SimResult base = simulate_pipeline(env, packets);
  SimEpilogue epilogue;
  epilogue.per_copy_stage_ops = {0.0, 200.0, 100.0};
  epilogue.per_copy_link_bytes = {0.0, 500.0};
  SimResult with = simulate_pipeline(env, packets, &epilogue);
  EXPECT_GT(with.total_time, base.total_time + 2.0);
}

TEST(Sim, BusyAccounting) {
  EnvironmentSpec env = simple_env();
  auto packets = uniform_trace(10, {100.0, 200.0, 50.0}, {100.0, 50.0});
  SimResult result = simulate_pipeline(env, packets);
  EXPECT_NEAR(result.stage_busy[0], 10.0, 1e-9);
  EXPECT_NEAR(result.stage_busy[1], 20.0, 1e-9);
  EXPECT_NEAR(result.link_busy[0], 10.0, 1e-9);
}

TEST(Sim, EmptyTraceIsZero) {
  SimResult result = simulate_pipeline(simple_env(), {});
  EXPECT_DOUBLE_EQ(result.total_time, 0.0);
}

}  // namespace
}  // namespace cgp
