// Tests for the future-work extensions (§8): profile-guided decomposition
// and automatic packet-size selection.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/app_configs.h"
#include "driver/adaptive.h"
#include "driver/simulate.h"

namespace cgp {
namespace {

CompileOptions options_for(const apps::AppConfig& config, int width = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  return options;
}

TEST(Profile, MeasuredInputHasSaneShape) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok) << result.diagnostics;
  DecompositionInput measured = profile_decomposition_input(
      result.model, result.decomp_input, config.runtime_constants, 4);
  ASSERT_EQ(measured.task_ops.size(), result.decomp_input.task_ops.size());
  for (double ops : measured.task_ops) EXPECT_GE(ops, 0.0);
  // The squaring foreach (filter 1) does real measured work.
  EXPECT_GT(measured.task_ops[1], 100.0);
  // The boundary after the squaring filter carries psize doubles.
  EXPECT_GT(measured.boundary_bytes[1], 64 * 8.0);
  // Input: psize doubles plus headers.
  EXPECT_GT(measured.input_bytes, 64 * 8.0);
  // Placement-time constants survive.
  EXPECT_DOUBLE_EQ(measured.source_io_ops, result.decomp_input.source_io_ops);
}

TEST(Profile, MeasuredVolumesTrackRealRuns) {
  // Profile-measured per-packet bytes should approximate what a real run
  // moves per packet (same codecs, same data).
  apps::AppConfig config = apps::knn_config(3);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  DecompositionInput measured = profile_decomposition_input(
      result.model, result.decomp_input, config.runtime_constants, 3);

  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, env).run();
  // The compiler put the distance filter on the data stage: boundary after
  // it is the dists[] payload (~4 B per point of a packet).
  std::vector<int> cuts = result.decomposition.placement.cuts(env.stages());
  ASSERT_GE(cuts[0], 0);
  const double measured_cut =
      measured.boundary_bytes[static_cast<std::size_t>(cuts[0])];
  const double real_cut = run.mean_link_bytes()[0];
  EXPECT_NEAR(measured_cut, real_cut, 0.15 * real_cut);
}

TEST(Profile, GuidedPlacementNoWorseThanStatic) {
  // Decomposing against measured numbers must not lose to the static
  // estimate when both are evaluated on the measured cost structure.
  for (apps::AppConfig config :
       {apps::tiny_config(1024, 8), apps::knn_config(3)}) {
    CompileResult result = compile_pipeline(config.source, options_for(config));
    ASSERT_TRUE(result.ok) << config.name;
    DecompositionInput measured = profile_decomposition_input(
        result.model, result.decomp_input, config.runtime_constants, 3);
    DecompositionResult guided =
        decompose_bruteforce(measured, Objective::PipelineTotal,
                             config.n_packets);
    double static_on_measured = full_pipeline_time(
        measured, result.decomposition.placement, config.n_packets);
    double guided_on_measured =
        full_pipeline_time(measured, guided.placement, config.n_packets);
    EXPECT_LE(guided_on_measured, static_on_measured + 1e-12) << config.name;
  }
}

TEST(Profile, FromRunRedistributesMeasuredStageOps) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  const Placement& placement = result.decomposition.placement;
  PipelineRunResult run = result.make_runner(placement, env).run();

  DecompositionInput measured = profile_decomposition_input_from_run(
      result.model, result.decomp_input, placement, run);
  ASSERT_EQ(measured.task_ops.size(), result.decomp_input.task_ops.size());

  // Per stage, the redistributed filter ops add up to the measured mean.
  const std::vector<double> stage_ops = run.mean_stage_ops();
  for (int s = 0; s < env.stages(); ++s) {
    double sum = 0.0;
    bool any = false;
    for (std::size_t f = 0; f < measured.task_ops.size(); ++f) {
      if (placement.unit_of_filter[f] != s) continue;
      sum += measured.task_ops[f];
      any = true;
    }
    if (any) {
      EXPECT_NEAR(sum, stage_ops[static_cast<std::size_t>(s)],
                  1e-9 * std::max(1.0, stage_ops[static_cast<std::size_t>(s)]))
          << "stage " << s;
    }
  }

  // Boundary volumes at the cut points carry the measured per-packet bytes.
  const std::vector<int> cuts = placement.cuts(env.stages());
  const std::vector<double> link_bytes = run.mean_link_bytes();
  for (std::size_t k = 0; k < link_bytes.size(); ++k) {
    if (cuts[k] >= 0) {
      EXPECT_DOUBLE_EQ(
          measured.boundary_bytes[static_cast<std::size_t>(cuts[k])],
          link_bytes[k]);
    } else {
      EXPECT_DOUBLE_EQ(measured.input_bytes, link_bytes[k]);
    }
  }

  // Placement-time constants survive untouched.
  EXPECT_DOUBLE_EQ(measured.source_io_ops, result.decomp_input.source_io_ops);
  EXPECT_DOUBLE_EQ(measured.replica_payload_bytes,
                   result.decomp_input.replica_payload_bytes);
}

TEST(Profile, FromRunRejectsDegenerateInputs) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  const Placement& placement = result.decomposition.placement;
  PipelineRunResult empty;  // no packets ran
  EXPECT_THROW(profile_decomposition_input_from_run(
                   result.model, result.decomp_input, placement, empty),
               std::invalid_argument);
  PipelineRunResult run = result.make_runner(placement, env).run();
  Placement wrong;
  wrong.unit_of_filter = {0};  // arity mismatch
  EXPECT_THROW(profile_decomposition_input_from_run(
                   result.model, result.decomp_input, wrong, run),
               std::invalid_argument);
}

TEST(Profile, SampleCountClampedToAvailablePackets) {
  apps::AppConfig config = apps::tiny_config(64, 2);
  CompileResult result = compile_pipeline(config.source, options_for(config));
  ASSERT_TRUE(result.ok);
  DecompositionInput measured = profile_decomposition_input(
      result.model, result.decomp_input, config.runtime_constants,
      /*sample_packets=*/16);
  EXPECT_GT(measured.task_ops[1], 0.0);
}

TEST(PacketSize, ChoosesAwayFromExtremesOnComputeHeavyApp) {
  // A compute-heavy pipeline (40 flops per element per stage): pipelining
  // pays, so neither one giant packet nor thousands of tiny ones win.
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class Heavy {
  void main() {
    int n = runtime_define_num_items;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = i * 0.5; }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] mid = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        double v = data[i];
        for (int k = 0; k < 40; k++) { v = v * 1.01 + 0.5; }
        mid[i - base] = v;
      }
      foreach (j in [0 : psize - 1]) {
        double v = mid[j];
        for (int k = 0; k < 40; k++) { v = v * 0.99 + 0.25; }
        acc.add(v);
      }
    }
    double result = acc.total;
  }
}
)";
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = {{"runtime_define_num_items", 1 << 14},
                               {"runtime_define_num_packets", 16}};
  options.size_bindings = {{"n", 1 << 14}, {"psize", 1024}, {"base", 0},
                           {"len(data)", 1 << 14}, {"len(mid)", 1024},
                           {"k", 0}};
  options.n_packets = 16;
  PacketSizeChoice choice = choose_packet_count(
      source, options, "runtime_define_num_packets",
      {1, 4, 16, 64, 512, 4096});
  ASSERT_EQ(choice.table.size(), 6u);
  EXPECT_GT(choice.best_count, 1);
  EXPECT_LT(choice.best_count, 4096);
  double t1 = 0.0;
  double t4096 = 0.0;
  for (const auto& [count, t] : choice.table) {
    if (count == 1) t1 = t;
    if (count == 4096) t4096 = t;
  }
  EXPECT_GT(t1, choice.best_predicted_time);
  EXPECT_GT(t4096, choice.best_predicted_time);
}

TEST(PacketSize, TableIsCompleteAndPositive) {
  apps::AppConfig config = apps::tiny_config(4096, 8);
  PacketSizeChoice choice = choose_packet_count(
      config.source, options_for(config), "runtime_define_num_packets",
      {2, 8, 32});
  ASSERT_EQ(choice.table.size(), 3u);
  for (const auto& [count, t] : choice.table) {
    EXPECT_GT(t, 0.0) << count;
  }
}

}  // namespace
}  // namespace cgp
