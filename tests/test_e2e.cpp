// End-to-end tests: compile the tiny dialect pipeline, run it through the
// DataCutter runtime under multiple placements and widths, and compare
// results against the sequential interpreter oracle.
#include <gtest/gtest.h>

#include "apps/app_configs.h"
#include "codegen/interp.h"
#include "driver/compiler.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

/// Sequential oracle: run the whole program in the interpreter.
std::map<std::string, Value> run_sequential(
    const std::string& source,
    const std::map<std::string, std::int64_t>& constants,
    const std::string& cls, const std::string& method = "main") {
  DiagnosticEngine diags;
  auto program = Parser::parse(source, diags);
  Sema sema(*program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  Interpreter interp(result.registry, constants);
  Env env = interp.run(cls, method);
  return env.flatten();
}

CompileResult compile_tiny(const apps::AppConfig& config, int width = 1) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(width);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult result = compile_pipeline(config.source, options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

TEST(E2E, TinyCompiles) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_tiny(config);
  ASSERT_TRUE(result.ok);
  // 3 atomic filters expected: seq decls, square foreach, accumulate foreach.
  EXPECT_EQ(result.model.filters.size(), 3u);
  EXPECT_EQ(result.model.boundary_count(), 2);
  EXPECT_TRUE(result.model.graph.is_chain());
  // acc is a loop-global reduction.
  EXPECT_EQ(result.model.reduction_decls.count("acc"), 1u);
}

TEST(E2E, TinyDecompMatchesSequential) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_tiny(config);
  auto oracle = run_sequential(config.source, config.runtime_constants, "Tiny");
  const double expected = as_double(oracle.at("result"));

  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  PipelineCompiler runner = result.make_runner(result.decomposition.placement,
                                               env);
  PipelineRunResult run = runner.run();
  ASSERT_TRUE(run.finals.count("result"));
  EXPECT_NEAR(as_double(run.finals.at("result")), expected, 1e-9);
  EXPECT_EQ(run.packets, 4);
}

TEST(E2E, TinyDefaultMatchesSequential) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_tiny(config);
  auto oracle = run_sequential(config.source, config.runtime_constants, "Tiny");
  const double expected = as_double(oracle.at("result"));

  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);
  PipelineCompiler runner = result.make_runner(result.baseline, env);
  PipelineRunResult run = runner.run();
  EXPECT_NEAR(as_double(run.finals.at("result")), expected, 1e-9);
}

TEST(E2E, TinyAllPlacementsMatch) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  CompileResult result = compile_tiny(config);
  auto oracle = run_sequential(config.source, config.runtime_constants, "Tiny");
  const double expected = as_double(oracle.at("result"));
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);

  // Every non-decreasing placement of 3 filters onto 3 stages.
  for (int a = 0; a < 3; ++a) {
    for (int b = a; b < 3; ++b) {
      for (int c = b; c < 3; ++c) {
        Placement placement;
        placement.unit_of_filter = {a, b, c};
        PipelineCompiler runner = result.make_runner(placement, env);
        PipelineRunResult run = runner.run();
        EXPECT_NEAR(as_double(run.finals.at("result")), expected, 1e-9)
            << placement.to_string();
      }
    }
  }
}

TEST(E2E, TinyWidthsMatch) {
  apps::AppConfig config = apps::tiny_config(512, 8);
  auto oracle = run_sequential(config.source, config.runtime_constants, "Tiny");
  const double expected = as_double(oracle.at("result"));
  for (int width : {1, 2, 4}) {
    CompileResult result = compile_tiny(config, width);
    EnvironmentSpec env = EnvironmentSpec::paper_cluster(width);
    PipelineCompiler runner = result.make_runner(result.decomposition.placement,
                                                 env);
    PipelineRunResult run = runner.run();
    EXPECT_NEAR(as_double(run.finals.at("result")), expected, 1e-9)
        << "width " << width;
  }
}

TEST(E2E, TelemetryVolumesAreSane) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_tiny(config);
  EnvironmentSpec env = EnvironmentSpec::paper_cluster(1);

  // Decomp should move fewer bytes over the first link than Default when
  // the compiler placed the squaring on the data stage; in any case the
  // telemetry must be populated and positive.
  PipelineRunResult decomp =
      result.make_runner(result.decomposition.placement, env).run();
  PipelineRunResult fallback = result.make_runner(result.baseline, env).run();
  ASSERT_EQ(decomp.link_packet_bytes.size(), 2u);
  EXPECT_GT(decomp.link_packet_bytes[0], 0);
  EXPECT_GT(fallback.link_packet_bytes[0], 0);
  EXPECT_GT(decomp.stage_ops[0] + decomp.stage_ops[1] + decomp.stage_ops[2],
            0.0);
}

TEST(E2E, GeneratedSourceMentionsStages) {
  apps::AppConfig config = apps::tiny_config(256, 4);
  CompileResult result = compile_tiny(config);
  EXPECT_NE(result.generated_source.find("Filter_Stage0"), std::string::npos);
  EXPECT_NE(result.generated_source.find("Filter_Stage2"), std::string::npos);
  EXPECT_NE(result.generated_source.find("foreach"), std::string::npos);
}

}  // namespace
}  // namespace cgp
