// Cross-module integration scenarios beyond the paper's four applications:
// nested classes crossing boundaries, longer and heterogeneous pipelines,
// fission interacting with end-to-end execution, failure injection.
#include <gtest/gtest.h>

#include "codegen/emitter.h"
#include "codegen/interp.h"
#include "driver/compiler.h"
#include "support/faultinject.h"
#include "parser/parser.h"
#include "sema/sema.h"

namespace cgp {
namespace {

std::map<std::string, Value> run_sequential(
    const std::string& source,
    const std::map<std::string, std::int64_t>& constants,
    const std::string& cls) {
  DiagnosticEngine diags;
  auto program = Parser::parse(source, diags);
  Sema sema(*program, diags);
  SemaResult result = sema.run();
  EXPECT_TRUE(result.ok) << diags.render();
  Interpreter interp(result.registry, constants);
  Env env = interp.run(cls, "main");
  return env.flatten();
}

CompileResult compile_ok(const std::string& source, CompileOptions options) {
  CompileResult result = compile_pipeline(source, options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

TEST(Integration, NestedClassFieldsCrossBoundaries) {
  // Elements whose communicated fields live in a NESTED class: the packing
  // planner must expand Particle -> pos.x / pos.y / charge and rebuild the
  // nested skeletons on the receiving side.
  const std::string source = R"(
interface Reducinterface { }
class Vec { float x; float y; }
class Particle { Vec pos; float charge; }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    Particle[] ps = new Particle[n];
    foreach (i in [0 : n - 1]) {
      Particle q = new Particle();
      Vec v = new Vec();
      v.x = i * 0.5;
      v.y = i * 0.25;
      q.pos = v;
      q.charge = 1.0 + i % 3;
      ps[i] = q;
    }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] vals = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        Particle q = ps[i];
        vals[i - base] = q.pos.x * q.charge + q.pos.y;
      }
      foreach (j in [0 : psize - 1]) {
        acc.add(vals[j]);
      }
    }
    double result = acc.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 256}, {"runtime_define_num_packets", 8}};
  auto oracle = run_sequential(source, constants, "App");
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 256}, {"psize", 32}, {"base", 0}};
  options.n_packets = 8;
  CompileResult result = compile_ok(source, options);

  // Force a placement that communicates the particle fields: everything on
  // the compute stage.
  PipelineRunResult run =
      result.make_runner(result.baseline, options.env).run();
  EXPECT_NEAR(as_double(run.finals.at("result")),
              as_double(oracle.at("result")), 1e-6);
}

TEST(Integration, FiveStageHeterogeneousPipeline) {
  // The model is not limited to data->compute->view: five stages with
  // heterogeneous powers, the middle one 10x faster.
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = i * 0.125; }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] a = new double[psize];
      foreach (i in [base : base + psize - 1]) { a[i - base] = data[i] * 2.0; }
      double[] b = new double[psize];
      foreach (j in [0 : psize - 1]) {
        double v = a[j];
        for (int k = 0; k < 32; k++) { v = v * 1.01 + 0.1; }
        b[j] = v;
      }
      double[] c = new double[psize];
      foreach (j in [0 : psize - 1]) { c[j] = b[j] + 1.0; }
      foreach (j in [0 : psize - 1]) { acc.add(c[j]); }
    }
    double result = acc.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 512}, {"runtime_define_num_packets", 8}};
  auto oracle = run_sequential(source, constants, "App");

  CompileOptions options;
  options.env.units = {ComputeUnit{"data", 100e6, 1},
                       ComputeUnit{"edge", 200e6, 1},
                       ComputeUnit{"hpc", 2000e6, 2},
                       ComputeUnit{"edge2", 200e6, 1},
                       ComputeUnit{"desktop", 100e6, 1}};
  options.env.links.assign(4, Link{50e6, 20e-6, 1});
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 512}, {"psize", 64}, {"base", 0}, {"k", 0}};
  options.n_packets = 8;
  CompileResult result = compile_ok(source, options);

  // The heavy middle foreach must land on the fast unit.
  const std::vector<int>& units = result.decomposition.placement.unit_of_filter;
  bool heavy_on_hpc = false;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (result.decomp_input.task_ops[i] ==
        *std::max_element(result.decomp_input.task_ops.begin(),
                          result.decomp_input.task_ops.end())) {
      heavy_on_hpc = units[i] == 2;
    }
  }
  EXPECT_TRUE(heavy_on_hpc) << result.decomposition.placement.to_string();

  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, options.env).run();
  EXPECT_NEAR(as_double(run.finals.at("result")),
              as_double(oracle.at("result")), 1e-6);
}

TEST(Integration, FissionedLoopRunsDecomposedAtWidth) {
  // A foreach whose body mixes calls and conditionals: fission splits it,
  // scalar expansion carries the temps, and the decomposed pipeline still
  // matches the sequential oracle at width 2.
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  double boost(double v) { return v * 1.5 + 0.25; }
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = i * 0.2; }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] out = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        double t = data[i] + 1.0;
        double u = boost(t);
        if (u > 10.0) {
          u = u - 5.0;
        }
        out[i - base] = u + t;
      }
      foreach (j in [0 : psize - 1]) { acc.add(out[j]); }
    }
    double result = acc.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 512}, {"runtime_define_num_packets", 8}};
  auto oracle = run_sequential(source, constants, "App");

  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(2);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 512}, {"psize", 64}, {"base", 0}};
  options.n_packets = 8;
  CompileResult result = compile_ok(source, options);
  // Fission split the mixed foreach: more than 3 atomic filters.
  EXPECT_GT(result.model.filters.size(), 3u);

  for (const Placement& placement :
       {result.decomposition.placement, result.baseline}) {
    PipelineRunResult run = result.make_runner(placement, options.env).run();
    EXPECT_NEAR(as_double(run.finals.at("result")),
                as_double(oracle.at("result")), 1e-6)
        << placement.to_string();
  }
}

TEST(Integration, TwoReductionVariables) {
  // Two independent reduction objects updated in different filters: both
  // replicate, cascade and merge correctly.
  const std::string source = R"(
interface Reducinterface { }
class Sum implements Reducinterface {
  double total;
  Sum() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Sum other) { total = total + other.total; }
}
class MaxVal implements Reducinterface {
  double best;
  MaxVal() { best = -1.0e30; }
  void offer(double v) { if (v > best) { best = v; } }
  void merge(MaxVal other) { offer(other.best); }
}
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = (i * 37 % 101) * 0.5; }
    Sum sum = new Sum();
    MaxVal peak = new MaxVal();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = data[i] * data[i];
        sum.add(data[i]);
      }
      foreach (j in [0 : psize - 1]) {
        peak.offer(sq[j]);
      }
    }
    double total = sum.total;
    double best = peak.best;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 256}, {"runtime_define_num_packets", 8}};
  auto oracle = run_sequential(source, constants, "App");
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(2);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 256}, {"psize", 32}, {"base", 0}};
  options.n_packets = 8;
  CompileResult result = compile_ok(source, options);
  EXPECT_EQ(result.model.reduction_decls.size(), 2u);

  PipelineRunResult run =
      result.make_runner(result.decomposition.placement, options.env).run();
  EXPECT_NEAR(as_double(run.finals.at("total")),
              as_double(oracle.at("total")), 1e-6);
  EXPECT_NEAR(as_double(run.finals.at("best")),
              as_double(oracle.at("best")), 1e-6);
}

TEST(Integration, NoReductionProgramStillWorks) {
  // §8: "applications that do not involve generalized reductions" — a
  // transform-only pipeline whose result is carried to the sink as packet
  // data (the last packet's carry provides the post-loop values).
  const std::string source = R"(
interface Reducinterface { }
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = i * 1.0; }
    double last = 0.0;
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] out = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        out[i - base] = data[i] * 3.0;
      }
      last = out[psize - 1];
    }
    double result = last;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 64}, {"runtime_define_num_packets", 4}};
  auto oracle = run_sequential(source, constants, "App");
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 64}, {"psize", 16}, {"base", 0}};
  options.n_packets = 4;
  CompileResult result = compile_ok(source, options);
  EXPECT_TRUE(result.model.reduction_decls.empty());
  // Sequential packet order means "last" is well-defined only because the
  // runtime preserves per-copy packet order and width is 1.
  PipelineRunResult run =
      result.make_runner(result.baseline, options.env).run();
  EXPECT_NEAR(as_double(run.finals.at("result")),
              as_double(oracle.at("result")), 1e-6);
}

TEST(Integration, RuntimeErrorInFilterPropagates) {
  // Failure injection: a divide-by-zero inside a filter must surface as an
  // exception from the pipeline run, not a hang or silent corruption.
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    int[] data = new int[n];
    foreach (i in [0 : n - 1]) { data[i] = i; }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      foreach (i in [base : base + psize - 1]) {
        acc.add(100 / data[i] * 1.0);
      }
    }
    double result = acc.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 16}, {"runtime_define_num_packets", 4}};
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = constants;
  options.n_packets = 4;
  CompileResult result = compile_ok(source, options);
  EXPECT_THROW(result.make_runner(result.baseline, options.env).run(),
               InterpError);
}

TEST(Integration, CompiledPipelineRecoversFromInjectedFaultUnderRestartCopy) {
  // Fault tolerance end-to-end through the compiled path: an injected
  // throw-on-Nth-packet in the source stage under restart-copy must leave
  // the final reduction identical to the sequential oracle, with the fault
  // and retry surfaced in the run result. (The source is the right target:
  // it restarts by deterministic re-compute with already-delivered packets
  // suppressed. Stages carrying reduction replica state lose their partial
  // accumulation on restart — see docs/ROBUSTNESS.md.)
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  void main() {
    int n = runtime_define_n;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) { data[i] = i * 0.5 + 1.0; }
    Acc acc = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] vals = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        vals[i - base] = data[i] * 2.0;
      }
      foreach (j in [0 : psize - 1]) {
        acc.add(vals[j]);
      }
    }
    double result = acc.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_n", 128}, {"runtime_define_num_packets", 8}};
  auto oracle = run_sequential(source, constants, "App");
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 128}, {"psize", 16}, {"base", 0}};
  options.n_packets = 8;
  CompileResult result = compile_ok(source, options);

  PipelineCompiler compiler = result.make_runner(result.baseline, options.env);
  dc::FaultPolicy policy;
  policy.action = dc::FaultAction::kRestartCopy;
  policy.backoff_initial_seconds = 1e-4;
  compiler.set_fault_policy(policy);
  compiler.set_packet_hook(
      support::make_fault_hook(support::parse_fault_plan("stage0:throw@2")));
  PipelineRunResult run = compiler.run();
  EXPECT_TRUE(run.completed) << run.error;
  EXPECT_NEAR(as_double(run.finals.at("result")),
              as_double(oracle.at("result")), 1e-6);
  ASSERT_EQ(run.faults.size(), 1u);
  EXPECT_EQ(run.faults[0].group, "stage0");
  EXPECT_EQ(run.faults[0].resolution, support::FaultResolution::kRetried);
  EXPECT_EQ(run.fault_policy, "restart-copy");
  // The trace carries the fault surface end to end.
  const support::PipelineTrace trace = run.trace();
  EXPECT_TRUE(trace.completed);
  ASSERT_EQ(trace.faults.size(), 1u);
}

TEST(Integration, PassthroughForwardsUntouchedCollectionVerbatim) {
  // A middle stage that consumes `sq` but merely relays `raw` to a later
  // consumer: the compiler must plan a passthrough route for `raw` (copied
  // bytes-for-bytes, never unpacked into Values) and the run must still
  // match the sequential oracle exactly. The boundary into the forwarding
  // stage packs `raw` field-wise (later consumer) while the boundary out
  // of it packs instance-wise (immediate consumer), so this also exercises
  // the single-item flag-byte patch.
  const std::string source = R"(
interface Reducinterface { }
class Acc implements Reducinterface {
  double total;
  Acc() { total = 0.0; }
  void add(double v) { total = total + v; }
  void merge(Acc other) { total = total + other.total; }
}
class App {
  void main() {
    int n = runtime_define_num_items;
    int npackets = runtime_define_num_packets;
    int psize = n / npackets;
    double[] data = new double[n];
    foreach (i in [0 : n - 1]) {
      data[i] = i * 0.5;
    }
    Acc acc = new Acc();
    Acc acc2 = new Acc();
    PipelinedLoop (p in [0 : npackets - 1]) {
      int base = p * psize;
      double[] sq = new double[psize];
      double[] raw = new double[psize];
      foreach (i in [base : base + psize - 1]) {
        sq[i - base] = data[i] * data[i];
        raw[i - base] = data[i] + 1.0;
      }
      foreach (j in [0 : psize - 1]) {
        acc.add(sq[j]);
      }
      foreach (j in [0 : psize - 1]) {
        acc2.add(raw[j]);
      }
    }
    double result = acc.total + acc2.total;
  }
}
)";
  std::map<std::string, std::int64_t> constants = {
      {"runtime_define_num_items", 4096},
      {"runtime_define_num_packets", 16}};
  auto oracle = run_sequential(source, constants, "App");
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(4);
  options.runtime_constants = constants;
  options.size_bindings = {{"n", 4096},        {"npackets", 16},
                           {"psize", 256},     {"base", 0},
                           {"len(data)", 4096}, {"len(sq)", 256},
                           {"len(raw)", 256}};
  options.n_packets = 16;
  CompileResult result = compile_ok(source, options);

  // Spread the consumers over the middle stages: the sq-consumer on stage
  // 1 sees raw pass through, the raw-consumer on stage 2 drains it.
  Placement placement = result.decomposition.placement;
  const int n_filters = static_cast<int>(result.model.filters.size());
  ASSERT_GE(n_filters, 3);
  placement.unit_of_filter.assign(static_cast<std::size_t>(n_filters), 0);
  placement.unit_of_filter[static_cast<std::size_t>(n_filters - 2)] = 1;
  placement.unit_of_filter[static_cast<std::size_t>(n_filters - 1)] = 2;
  placement.replicas.clear();

  PipelineCompiler runner = result.make_runner(placement, options.env);
  const StagePlan& forwarder = runner.plans()[1];
  ASSERT_EQ(forwarder.passthrough.size(), 1u);
  const StagePlan::PassthroughRoute& route = forwarder.passthrough[0];
  EXPECT_EQ(forwarder.output_layout
                .groups[static_cast<std::size_t>(route.out_group)]
                .collection,
            "raw");
  EXPECT_TRUE(route.patch_flag);  // field-wise in, instance-wise out

  // The emitted DataCutter source documents the route instead of a repack.
  const std::string code = emit_datacutter_source(result.model, runner.plans());
  EXPECT_NE(code.find("zero-copy passthrough for 'raw'"), std::string::npos);
  EXPECT_NE(code.find("layout flag byte patched"), std::string::npos);
  EXPECT_NE(code.find("PackedView::parse"), std::string::npos);

  PipelineRunResult run = runner.run();
  // Exact equality: single-copy execution is deterministic and the
  // passthrough bytes are the sender's bytes.
  EXPECT_EQ(as_double(run.finals.at("result")),
            as_double(oracle.at("result")));
}

}  // namespace
}  // namespace cgp
