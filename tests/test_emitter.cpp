// DataCutter source emitter tests (§5, Figure 4 shapes).
#include <gtest/gtest.h>

#include "apps/app_configs.h"
#include "codegen/emitter.h"
#include "driver/compiler.h"

namespace cgp {
namespace {

CompileResult compile(const apps::AppConfig& config) {
  CompileOptions options;
  options.env = EnvironmentSpec::paper_cluster(1);
  options.runtime_constants = config.runtime_constants;
  options.size_bindings = config.size_bindings;
  options.n_packets = config.n_packets;
  CompileResult result = compile_pipeline(config.source, options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

TEST(Emitter, TinyStructure) {
  CompileResult result = compile(apps::tiny_config(64, 4));
  const std::string& source = result.generated_source;
  // One filter class per stage.
  EXPECT_NE(source.find("class Filter_Stage0"), std::string::npos);
  EXPECT_NE(source.find("class Filter_Stage1"), std::string::npos);
  EXPECT_NE(source.find("class Filter_Stage2"), std::string::npos);
  // The DataCutter work-cycle hooks.
  EXPECT_NE(source.find("void init(cgp::dc::FilterContext& ctx)"),
            std::string::npos);
  EXPECT_NE(source.find("void process(cgp::dc::FilterContext& ctx)"),
            std::string::npos);
  EXPECT_NE(source.find("void finalize(cgp::dc::FilterContext& ctx)"),
            std::string::npos);
}

TEST(Emitter, ReducedStructOnlyHasCommunicatedFields) {
  ClassRegistry registry;
  PackingLayout layout;
  PackGroup group;
  group.collection = "tris";
  group.instancewise = true;
  PackedItem x;
  x.id = ValueId{"tris", {kElemStep, "x"}};
  x.type = Type::primitive(PrimKind::Float);
  group.items.push_back(x);
  PackedItem val;
  val.id = ValueId{"tris", {kElemStep, "val"}};
  val.type = Type::primitive(PrimKind::Float);
  group.items.push_back(val);
  layout.groups.push_back(group);
  std::string code = emit_reduced_struct("Reduced_tris", layout, "tris");
  EXPECT_NE(code.find("struct Reduced_tris"), std::string::npos);
  EXPECT_NE(code.find("float x;"), std::string::npos);
  EXPECT_NE(code.find("float val;"), std::string::npos);
  EXPECT_EQ(code.find("float y;"), std::string::npos);
}

TEST(Emitter, InstanceWiseAndFieldWiseLoops) {
  CompileResult result = compile(apps::isosurface_zbuffer_config(false));
  const std::string& source = result.generated_source;
  EXPECT_NE(source.find("instance-wise"), std::string::npos);
  // Generated code documents the packing decision per group.
  EXPECT_NE(source.find("Reduced_"), std::string::npos);
}

TEST(Emitter, RelayAndReplicaAnnotations) {
  CompileResult result = compile(apps::tiny_config(64, 4));
  const std::string& source = result.generated_source;
  EXPECT_NE(source.find("reduction replica"), std::string::npos);
  EXPECT_NE(source.find("post-loop code"), std::string::npos);
}

TEST(Emitter, DeterministicOutput) {
  apps::AppConfig config = apps::tiny_config(64, 4);
  CompileResult a = compile(config);
  CompileResult b = compile(config);
  EXPECT_EQ(a.generated_source, b.generated_source);
}

}  // namespace
}  // namespace cgp
