// Filter decomposition tests (§4.4): DP vs brute force, placements,
// properties on random instances.
#include <gtest/gtest.h>

#include "decomp/decompose.h"
#include "support/rng.h"

namespace cgp {
namespace {

DecompositionInput make_input(std::vector<double> tasks,
                              std::vector<double> volumes, double input_bytes,
                              int stages, double power = 100.0,
                              double bandwidth = 10.0) {
  DecompositionInput input;
  input.task_ops = std::move(tasks);
  input.boundary_bytes = std::move(volumes);
  input.input_bytes = input_bytes;
  input.env = EnvironmentSpec::uniform(stages, power, bandwidth);
  return input;
}

TEST(Decomp, PlacementCuts) {
  Placement p;
  p.unit_of_filter = {0, 0, 1, 2};
  std::vector<int> cuts = p.cuts(3);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], 1);  // filters 0..1 before link 0
  EXPECT_EQ(cuts[1], 2);  // filters 0..2 before link 1
}

TEST(Decomp, AllOnLastStage) {
  Placement p;
  p.unit_of_filter = {2, 2};
  std::vector<int> cuts = p.cuts(3);
  EXPECT_EQ(cuts[0], -1);  // raw input crosses both links
  EXPECT_EQ(cuts[1], -1);
}

TEST(Decomp, DpPrefersDataNodeFilteringWhenVolumeShrinks) {
  // Filter 0 shrinks the data 10x: the DP should place it on stage 0.
  DecompositionInput input = make_input(
      /*tasks=*/{100.0, 100.0, 10.0},
      /*volumes=*/{100.0, 100.0, 10.0},
      /*input=*/1000.0, /*stages=*/3);
  DecompositionResult result = decompose_dp(input);
  EXPECT_EQ(result.placement.unit_of_filter[0], 0);
}

TEST(Decomp, DpForwardsEarlyWhenComputeCheapAndVolumesEqual) {
  // With equal volumes everywhere the chain latency is placement-invariant;
  // the DP must still produce a valid non-decreasing placement.
  DecompositionInput input = make_input({10, 10, 10}, {50, 50, 50}, 50.0, 3);
  DecompositionResult result = decompose_dp(input);
  int prev = 0;
  for (int unit : result.placement.unit_of_filter) {
    EXPECT_GE(unit, prev);
    prev = unit;
  }
}

TEST(Decomp, DpMatchesBruteForceOnLatency) {
  Rng rng(2003);
  for (int trial = 0; trial < 60; ++trial) {
    int n_filters = static_cast<int>(rng.next_int(1, 7));
    int stages = static_cast<int>(rng.next_int(2, 4));
    std::vector<double> tasks;
    std::vector<double> volumes;
    for (int i = 0; i < n_filters; ++i) {
      tasks.push_back(rng.next_double(1.0, 500.0));
      volumes.push_back(rng.next_double(1.0, 500.0));
    }
    DecompositionInput input =
        make_input(tasks, volumes, rng.next_double(1.0, 500.0), stages);
    DecompositionResult dp = decompose_dp(input);
    DecompositionResult brute =
        decompose_bruteforce(input, Objective::PerPacketLatency);
    EXPECT_NEAR(dp.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost))
        << "trial " << trial;
    // And the DP placement's evaluated latency matches its claimed cost.
    EXPECT_NEAR(placement_latency(input, dp.placement), dp.cost,
                1e-9 * std::max(1.0, dp.cost));
  }
}

TEST(Decomp, RollingSpaceVariantMatchesFullTable) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    int n_filters = static_cast<int>(rng.next_int(1, 9));
    int stages = static_cast<int>(rng.next_int(2, 5));
    std::vector<double> tasks;
    std::vector<double> volumes;
    for (int i = 0; i < n_filters; ++i) {
      tasks.push_back(rng.next_double(1.0, 100.0));
      volumes.push_back(rng.next_double(1.0, 100.0));
    }
    DecompositionInput input =
        make_input(tasks, volumes, rng.next_double(1.0, 100.0), stages);
    EXPECT_NEAR(decompose_dp(input).cost, decompose_dp_cost_only(input), 1e-9);
  }
}

TEST(Decomp, DpCellCountIsLinearInNM) {
  DecompositionInput input = make_input(std::vector<double>(10, 1.0),
                                        std::vector<double>(10, 1.0), 1.0, 4);
  DecompositionResult result = decompose_dp(input);
  // (n+1) filters x m units plus the init row.
  EXPECT_LE(result.cells_evaluated, 10u * 4u + 4u);
}

TEST(Decomp, HeterogeneousPowersRespected) {
  // Stage 1 is 100x faster: heavy filters should land there even at some
  // communication cost.
  DecompositionInput input;
  input.task_ops = {1000.0, 1000.0};
  input.boundary_bytes = {10.0, 10.0};
  input.input_bytes = 10.0;
  input.env.units = {ComputeUnit{"slow", 10.0, 1},
                     ComputeUnit{"fast", 1000.0, 1},
                     ComputeUnit{"slow2", 10.0, 1}};
  input.env.links = {Link{100.0, 0.0, 1}, Link{100.0, 0.0, 1}};
  DecompositionResult result = decompose_dp(input);
  EXPECT_EQ(result.placement.unit_of_filter[0], 1);
  EXPECT_EQ(result.placement.unit_of_filter[1], 1);
}

TEST(Decomp, Figure3VerbatimIgnoresInputMovement) {
  // With input_bytes = 0 (Figure 3 as printed) and huge input volume
  // otherwise, the optima differ: the corrected model pins filter 0 early.
  DecompositionInput corrected =
      make_input({10.0}, {1.0}, /*input=*/10000.0, 3);
  DecompositionInput verbatim = corrected;
  verbatim.input_bytes = 0.0;
  double cost_corrected = decompose_dp(corrected).cost;
  double cost_verbatim = decompose_dp(verbatim).cost;
  EXPECT_LT(cost_verbatim, cost_corrected);
}

TEST(Decomp, FullPipelineTimeUsesBottleneck) {
  DecompositionInput input = make_input({100.0, 100.0}, {10.0, 10.0}, 10.0, 3);
  Placement spread;
  spread.unit_of_filter = {0, 1};
  double t1 = full_pipeline_time(input, spread, 1);
  double t100 = full_pipeline_time(input, spread, 100);
  // Spread placement pipelines: cost grows by ~bottleneck per packet.
  EXPECT_GT(t100, t1);
  Placement stacked;
  stacked.unit_of_filter = {1, 1};
  // Stacking both filters doubles the bottleneck stage time.
  EXPECT_GT(full_pipeline_time(input, stacked, 100),
            full_pipeline_time(input, spread, 100));
}

TEST(Decomp, BruteForceFullObjectiveCanDisagreeWithLatency) {
  // A case where minimizing per-packet latency (the paper's DP objective)
  // differs from minimizing total pipeline time: splitting work across
  // stages halves the bottleneck even though latency is unchanged.
  DecompositionInput input = make_input({100.0, 100.0}, {10.0, 10.0}, 10.0, 3,
                                        /*power=*/100.0, /*bandwidth=*/1e9);
  DecompositionResult latency_opt =
      decompose_bruteforce(input, Objective::PerPacketLatency);
  DecompositionResult total_opt =
      decompose_bruteforce(input, Objective::PipelineTotal, 1000);
  double latency_total =
      full_pipeline_time(input, latency_opt.placement, 1000);
  double best_total = full_pipeline_time(input, total_opt.placement, 1000);
  EXPECT_LE(best_total, latency_total);
}

TEST(Decomp, DefaultPlacementAllOnCompute) {
  DecompositionInput input = make_input({1, 2, 3}, {1, 1, 1}, 1.0, 3);
  Placement def = default_placement(input);
  for (int unit : def.unit_of_filter) EXPECT_EQ(unit, 1);
}

// --- stage replication (ROADMAP item 1) ---

// Random instance with a replication surface: per-filter parallel flags,
// a replica budget, and a small per-replica overhead.
DecompositionInput make_replicated_input(Rng& rng, int max_replicas) {
  int n_filters = static_cast<int>(rng.next_int(1, 6));
  int stages = static_cast<int>(rng.next_int(2, 4));
  std::vector<double> tasks;
  std::vector<double> volumes;
  std::vector<char> flags;
  for (int i = 0; i < n_filters; ++i) {
    tasks.push_back(rng.next_double(1.0, 500.0));
    volumes.push_back(rng.next_double(1.0, 500.0));
    flags.push_back(rng.next_int(0, 2) != 0 ? 1 : 0);
  }
  DecompositionInput input =
      make_input(tasks, volumes, rng.next_double(1.0, 500.0), stages);
  input.parallelizable = std::move(flags);
  input.max_replicas = max_replicas;
  input.replication_overhead_sec = rng.next_double(0.0, 0.5);
  input.source_io_ops = rng.next_double(0.0, 200.0);
  return input;
}

TEST(Decomp, ReplicaPlanRespectsBudgetAndClassifier) {
  Rng rng(4242);
  for (int trial = 0; trial < 80; ++trial) {
    const int budget = static_cast<int>(rng.next_int(2, 5));
    DecompositionInput input = make_replicated_input(rng, budget);
    DecompositionResult result = decompose_dp(input);
    const int stages = static_cast<int>(input.env.units.size());
    ASSERT_EQ(result.placement.replicas.size(),
              static_cast<std::size_t>(stages))
        << "trial " << trial;
    for (int s = 0; s < stages; ++s) {
      const int r = result.placement.replicas_of(s);
      EXPECT_GE(r, 1) << "trial " << trial;
      EXPECT_LE(r, budget) << "trial " << trial;
    }
    // The result stage merges replicas and stays singular.
    EXPECT_EQ(result.placement.replicas_of(stages - 1), 1)
        << "trial " << trial;
    // A stage hosting any sequential filter keeps one copy.
    for (std::size_t i = 0; i < input.task_ops.size(); ++i) {
      if (input.parallelizable[i]) continue;
      EXPECT_EQ(result.placement.replicas_of(
                    result.placement.unit_of_filter[i]),
                1)
          << "trial " << trial << " filter " << i;
    }
  }
}

TEST(Decomp, MaxReplicasOneReproducesLegacyExactly) {
  // With the budget at 1 the replicated code path must not even engage:
  // identical placement, bit-identical cost, and no replica plan.
  Rng rng(515);
  for (int trial = 0; trial < 60; ++trial) {
    DecompositionInput replicated = make_replicated_input(rng, 1);
    DecompositionInput legacy = replicated;
    legacy.parallelizable.clear();
    legacy.max_replicas = 1;
    legacy.replication_overhead_sec = 0.0;
    DecompositionResult a = decompose_dp(replicated);
    DecompositionResult b = decompose_dp(legacy);
    EXPECT_EQ(a.placement.unit_of_filter, b.placement.unit_of_filter)
        << "trial " << trial;
    EXPECT_EQ(a.cost, b.cost) << "trial " << trial;  // bit-for-bit
    EXPECT_TRUE(a.placement.replicas.empty()) << "trial " << trial;
    EXPECT_TRUE(a.placement == b.placement) << "trial " << trial;
  }
}

TEST(Decomp, ReplicatedDpMatchesBruteForceOnLatency) {
  Rng rng(8080);
  for (int trial = 0; trial < 60; ++trial) {
    const int budget = static_cast<int>(rng.next_int(2, 4));
    DecompositionInput input = make_replicated_input(rng, budget);
    DecompositionResult dp = decompose_dp(input);
    DecompositionResult brute =
        decompose_bruteforce(input, Objective::PerPacketLatency);
    EXPECT_NEAR(dp.cost, brute.cost, 1e-9 * std::max(1.0, brute.cost))
        << "trial " << trial << " dp=" << dp.placement.to_string()
        << " brute=" << brute.placement.to_string();
    EXPECT_NEAR(placement_latency(input, dp.placement), dp.cost,
                1e-9 * std::max(1.0, dp.cost))
        << "trial " << trial;
  }
}

TEST(Decomp, ReplicatedRollingVariantMatchesFullTable) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const int budget = static_cast<int>(rng.next_int(2, 5));
    DecompositionInput input = make_replicated_input(rng, budget);
    EXPECT_NEAR(decompose_dp(input).cost, decompose_dp_cost_only(input), 1e-9)
        << "trial " << trial;
  }
}

TEST(Decomp, ReplicationBudgetNeverWorsensTheOptimum) {
  // r = 1 everywhere is always in the enlarged search space, so the
  // replicated optimum can only match or beat the legacy one.
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    DecompositionInput input = make_replicated_input(rng, 4);
    DecompositionInput legacy = input;
    legacy.max_replicas = 1;
    EXPECT_LE(decompose_dp(input).cost,
              decompose_dp(legacy).cost + 1e-12)
        << "trial " << trial;
  }
}

TEST(Decomp, HotStatelessStageGetsReplicated) {
  // One heavy parallel filter dominates the pipeline; with cheap links and
  // negligible replication overhead the DP must spend the budget on it.
  DecompositionInput input = make_input(/*tasks=*/{10.0, 2000.0, 10.0},
                                        /*volumes=*/{8.0, 8.0, 8.0},
                                        /*input=*/8.0, /*stages=*/3,
                                        /*power=*/100.0,
                                        /*bandwidth=*/1e9);
  input.parallelizable = {1, 1, 1};
  input.max_replicas = 4;
  input.replication_overhead_sec = 1e-6;
  DecompositionResult result = decompose_dp(input);
  bool replicated = false;
  for (std::size_t i = 0; i < input.task_ops.size(); ++i) {
    if (input.task_ops[i] < 1000.0) continue;
    replicated = result.placement.replicas_of(
                     result.placement.unit_of_filter[i]) > 1;
  }
  EXPECT_TRUE(replicated) << result.placement.to_string();
  EXPECT_LT(result.cost, decompose_dp([&] {
              DecompositionInput one = input;
              one.max_replicas = 1;
              return one;
            }()).cost);
}

TEST(Decomp, ReplicatedBruteForceAgreesOnTotalObjective) {
  // The total-time objective (what the compiler ships) also enumerates
  // replica plans; its optimum is never worse than the unreplicated one
  // and respects the classifier.
  Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    const int budget = static_cast<int>(rng.next_int(2, 4));
    DecompositionInput input = make_replicated_input(rng, budget);
    DecompositionInput legacy = input;
    legacy.max_replicas = 1;
    DecompositionResult best =
        decompose_bruteforce(input, Objective::PipelineTotal, 64);
    DecompositionResult base =
        decompose_bruteforce(legacy, Objective::PipelineTotal, 64);
    EXPECT_LE(best.cost, base.cost + 1e-12) << "trial " << trial;
    for (std::size_t i = 0; i < input.task_ops.size(); ++i) {
      if (input.parallelizable[i]) continue;
      EXPECT_EQ(best.placement.replicas_of(best.placement.unit_of_filter[i]),
                1)
          << "trial " << trial;
    }
  }
}

TEST(Decomp, SingleStagePipeline) {
  DecompositionInput input = make_input({5.0, 5.0}, {1.0, 1.0}, 1.0, 1);
  // m = 1: everything on the only unit; no links.
  input.env = EnvironmentSpec::uniform(1, 100.0, 1.0);
  DecompositionResult result = decompose_dp(input);
  EXPECT_EQ(result.placement.unit_of_filter[0], 0);
  EXPECT_EQ(result.placement.unit_of_filter[1], 0);
  EXPECT_NEAR(result.cost, 0.1, 1e-12);
}

}  // namespace
}  // namespace cgp
