// Value serialization tests.
#include <gtest/gtest.h>

#include "codegen/serialize.h"

namespace cgp {
namespace {

Value round_trip(const Value& value) {
  dc::Buffer buffer;
  write_value(buffer, value);
  return read_value(buffer);
}

TEST(Serialize, Primitives) {
  EXPECT_TRUE(value_equal(round_trip(Value{std::int64_t{-42}}),
                          Value{std::int64_t{-42}}));
  EXPECT_TRUE(value_equal(round_trip(Value{3.25}), Value{3.25}));
  EXPECT_TRUE(value_equal(round_trip(Value{true}), Value{true}));
  EXPECT_TRUE(value_equal(round_trip(Value{std::string("hi")}),
                          Value{std::string("hi")}));
  EXPECT_TRUE(value_equal(round_trip(Value{}), Value{}));
}

TEST(Serialize, Rectdomain) {
  RectDomainVal dom{3, 17};
  Value v = round_trip(Value{dom});
  const auto& out = std::get<RectDomainVal>(v);
  EXPECT_EQ(out.lo, 3);
  EXPECT_EQ(out.hi, 17);
}

TEST(Serialize, CompactDoubleArray) {
  auto arr = std::make_shared<ArrayVal>();
  arr->base_index = 5;
  for (int i = 0; i < 100; ++i) arr->elems.push_back(Value{i * 0.5});
  dc::Buffer buffer;
  write_value(buffer, Value{arr});
  // Raw encoding: ~tag + base + count + 100 doubles, no per-element tags.
  EXPECT_LT(buffer.size(), 100 * 8 + 32);
  Value out = read_value(buffer);
  EXPECT_TRUE(value_equal(Value{arr}, out));
  EXPECT_EQ(std::get<std::shared_ptr<ArrayVal>>(out)->base_index, 5);
}

TEST(Serialize, CompactIntArray) {
  auto arr = std::make_shared<ArrayVal>();
  for (int i = 0; i < 10; ++i) arr->elems.push_back(Value{std::int64_t{i}});
  EXPECT_TRUE(value_equal(round_trip(Value{arr}), Value{arr}));
}

TEST(Serialize, ObjectGraph) {
  auto inner = std::make_shared<Object>();
  inner->class_name = "Inner";
  inner->fields = {Value{std::int64_t{7}}};
  auto outer = std::make_shared<Object>();
  outer->class_name = "Outer";
  outer->fields = {Value{1.5}, Value{inner}, Value{}};
  Value out = round_trip(Value{outer});
  EXPECT_TRUE(value_equal(Value{outer}, out));
  const auto& obj = std::get<std::shared_ptr<Object>>(out);
  EXPECT_EQ(obj->class_name, "Outer");
  const auto& nested = std::get<std::shared_ptr<Object>>(obj->fields[1]);
  EXPECT_EQ(nested->class_name, "Inner");
}

TEST(Serialize, MixedArrayFallsBackToTagged) {
  auto arr = std::make_shared<ArrayVal>();
  arr->elems.push_back(Value{std::int64_t{1}});
  arr->elems.push_back(Value{2.0});
  EXPECT_TRUE(value_equal(round_trip(Value{arr}), Value{arr}));
}

TEST(Serialize, ValueEqualToleratesFloatNoise) {
  EXPECT_TRUE(value_equal(Value{1.0}, Value{1.0 + 1e-12}, 1e-9));
  EXPECT_FALSE(value_equal(Value{1.0}, Value{1.1}, 1e-9));
}

TEST(Serialize, ValueEqualCrossNumeric) {
  EXPECT_TRUE(value_equal(Value{std::int64_t{3}}, Value{3.0}, 0.0));
  EXPECT_FALSE(value_equal(Value{std::int64_t{3}}, Value{true}));
}

TEST(Serialize, CorruptBufferThrows) {
  dc::Buffer buffer;
  buffer.write<std::uint8_t>(250);  // invalid tag
  EXPECT_THROW(read_value(buffer), std::runtime_error);
}

}  // namespace
}  // namespace cgp
